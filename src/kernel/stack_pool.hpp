#pragma once
// Pooled coroutine stacks.
//
// Every thread process used to own a 256 KiB `new char[]` stack:
// allocation, zero-fill, and first-touch page faults on every spawn. A
// thousand-platform exploration sweep spawns tens of thousands of
// short-lived processes, so the stacks dominated platform setup cost.
//
// StackPool replaces that with a per-OS-thread free list of mmap'd
// blocks. Each block carries a PROT_NONE guard page below the usable
// range, so a coroutine overflowing its stack faults immediately instead
// of corrupting a neighbouring allocation — strictly better than the old
// heap arrays. Release returns a block to the calling thread's pool
// (blocks are plain address ranges, so a block acquired on one thread
// may be released on another; each pool only ever touches its own
// lists, so no locking is needed).
//
// Shrink policy (high-water mark): a size class never caches more
// blocks than its peak concurrent demand over the current and previous
// "epoch" (an epoch ends each time usage drains to zero). Steady
// repeated demand — a sweep tearing down one platform and building the
// next — therefore recycles every stack, while a one-off burst is shed
// after two quiet epochs instead of being pinned forever.

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace stlm::detail {

class StackPool {
public:
  // A usable stack range: [base, base + bytes), guard page below base.
  struct Block {
    char* base = nullptr;
    std::size_t bytes = 0;
    explicit operator bool() const { return base != nullptr; }
  };

  // The calling OS thread's pool (thread-local singleton).
  static StackPool& local();

  ~StackPool();
  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  // A block with at least `bytes` usable (rounded up to whole pages),
  // recycled from the free list when possible. Throws SimulationError
  // if the kernel refuses the mapping.
  Block acquire(std::size_t bytes);
  // Return a block. It must have come from a StackPool (any thread's).
  void release(Block b);

  // Unmap every cached block (used by tests and the destructor).
  void trim();

  // --- observability (pool-behaviour regression tests) -------------------
  std::uint64_t maps() const { return maps_; }
  std::uint64_t unmaps() const { return unmaps_; }
  std::uint64_t reuses() const { return reuses_; }
  std::size_t cached_blocks() const;
  std::size_t cached_bytes() const;

private:
  StackPool() = default;

  struct SizeClass {
    std::vector<Block> free;
    std::size_t in_use = 0;
    std::size_t hwm = 0;       // peak concurrent usage this epoch
    std::size_t prev_hwm = 0;  // previous epoch's peak
    std::size_t cache_cap() const { return hwm > prev_hwm ? hwm : prev_hwm; }
  };

  static Block map_block(std::size_t bytes);
  static void unmap_block(const Block& b);

  std::unordered_map<std::size_t, SizeClass> classes_;
  std::uint64_t maps_ = 0;
  std::uint64_t unmaps_ = 0;
  std::uint64_t reuses_ = 0;
};

}  // namespace stlm::detail
