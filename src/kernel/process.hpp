#pragma once
// Simulation processes.
//
// Two kinds, mirroring SystemC:
//   * Process       — a thread process: a stack-switching coroutine (see
//                     context.hpp), so it can block in wait() at any call
//                     depth.
//                     This is what makes SHIP's blocking interface method
//                     calls (send/recv/request/reply) expressible.
//   * MethodProcess — a method process: a callback re-run from the top on
//                     every trigger of its static sensitivity; cheap, used
//                     by clocked pin-level FSMs.

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kernel/context.hpp"
#include "kernel/stack_pool.hpp"

namespace stlm {

class Simulator;
class Event;

// Thrown through a parked coroutine by Simulator::kill_process to unwind
// its stack (running the destructors of everything the body holds) at
// teardown. Deliberately not derived from std::exception: a `catch
// (const std::exception&)` in process code will not swallow it. Process
// bodies that use `catch (...)` around code that may wait() MUST rethrow
// this type, or the kill is lost and the stack is reclaimed un-unwound.
struct ProcessKilled {};

// Out-of-line cold throw: a `throw` statement inside the context-switch
// hot path (Simulator::suspend_current) pessimizes its codegen enough to
// show up on switch-bound benchmarks, so the Kill check calls this
// instead.
[[noreturn]] void throw_process_killed();

// True when teardown unwinding is compiled in (see the STLM_KILL_UNWIND
// rationale in kernel/context.hpp). Tests that assert destructors ran on
// killed stacks skip themselves when this is false.
constexpr bool kill_unwind_compiled_in() {
#ifdef STLM_KILL_UNWIND
  return true;
#else
  return false;
#endif
}

class ProcessBase {
public:
  enum class Kind { Thread, Method };

  ProcessBase(Simulator& sim, std::string name, Kind kind);
  virtual ~ProcessBase();

  ProcessBase(const ProcessBase&) = delete;
  ProcessBase& operator=(const ProcessBase&) = delete;

  const std::string& name() const { return name_; }
  Kind kind() const { return kind_; }
  bool terminated() const { return terminated_; }
  Simulator& sim() const { return sim_; }

  // Replace the static sensitivity list (registers with each event).
  void set_static_sensitivity(const std::vector<Event*>& events);
  const std::vector<Event*>& static_sensitivity() const { return static_events_; }

  // Dispatch sequence number at the moment this process was last made
  // runnable (determinism auditor; see kernel/audit.hpp). enq == the
  // enqueuer's own dispatch seq means the wake was causal.
  std::uint64_t audit_enq_seq() const { return audit_enq_seq_; }

protected:
  friend class Simulator;
  friend class Event;

  Simulator& sim_;
  std::string name_;
  Kind kind_;
  bool terminated_ = false;
  std::uint64_t audit_enq_seq_ = 0;
  std::vector<Event*> static_events_;
};

// Thread process: coroutine with dedicated stack.
class Process final : public ProcessBase {
public:
  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  Process(Simulator& sim, std::string name, std::function<void()> body,
          std::size_t stack_bytes = kDefaultStackBytes);
  ~Process() override;

  enum class WakeReason { None, Start, Event, Timeout, Kill };

  // Event that fires when this process terminates (body returned or threw).
  Event& terminated_event();

  std::uint64_t wake_gen() const { return wake_gen_; }

  // The event that most recently woke this process (nullptr after a
  // timeout or initial start). Valid right after wait() returns.
  Event* last_wake_event() const { return last_event_; }

private:
  friend class Simulator;
  friend class Event;

  static void trampoline();  // coroutine entry; dispatches via tls pointer
  void ensure_started();

  std::function<void()> body_;
  detail::StackPool::Block stack_;  // pooled, guard-paged (see stack_pool.hpp)
  std::size_t stack_bytes_;
  void* fake_stack_ = nullptr;  // sanitizer fiber handle (ASan builds)
  void* tsan_fiber_ = nullptr;  // fiber identity (TSan builds)
  void* sp_ = nullptr;  // saved stack pointer while suspended
  bool started_ = false;
  bool runnable_ = false;                    // queued in the runnable list
  std::uint64_t wake_gen_ = 0;               // invalidates stale wakeups
  WakeReason wake_reason_ = WakeReason::None;
  Event* last_event_ = nullptr;              // event that caused the wake
  std::exception_ptr error_;
  std::unique_ptr<Event> terminated_event_;  // lazily created
};

// Method process: callback re-run on every trigger.
class MethodProcess final : public ProcessBase {
public:
  MethodProcess(Simulator& sim, std::string name, std::function<void()> fn,
                bool run_at_start = true);

private:
  friend class Simulator;
  friend class Event;

  std::function<void()> fn_;
  bool queued_ = false;
  bool run_at_start_ = true;
};

}  // namespace stlm
