#include "hwsw/hw_adapter.hpp"

#include <algorithm>

namespace stlm::hwsw {

HwAdapter::HwAdapter(Simulator& sim, std::string name,
                     cam::MailboxLayout layout, Time irq_pulse)
    : Module(sim, std::move(name)),
      layout_(layout),
      irq_(sim, full_name() + ".irq", false),
      irq_pulse_(irq_pulse),
      irq_trigger_(sim, full_name() + ".irq_trigger"),
      chunk_buf_(layout.window_bytes, 0),
      rx_normal_ev_(sim, full_name() + ".rx_normal"),
      rx_reply_ev_(sim, full_name() + ".rx_reply"),
      out_consumed_(sim, full_name() + ".out_consumed") {
  STLM_ASSERT(!irq_pulse_.is_zero(), "IRQ pulse must be positive: " + full_name());
  spawn_thread("irq_pulser", [this] { irq_pulser(); });
}

void HwAdapter::irq_pulser() {
  for (;;) {
    wait(irq_trigger_);
    ++irqs_;
    irq_.write(true);
    wait(irq_pulse_);
    irq_.write(false);
    // Let the negedge settle so back-to-back messages produce distinct
    // rising edges.
    wait(irq_pulse_);
    if (!out_queue_.empty()) irq_trigger_.notify_delta();
  }
}

void HwAdapter::enqueue_outbound(const ship::ship_serializable_if& msg,
                                 std::uint32_t flags) {
  Txn& t = sim().txn_pool().acquire();
  t.begin_msg(0);
  ship::to_bytes_into(msg, t.data);
  // Even empty payloads must be observable through RSTATUS.
  if (t.data.empty()) t.data.push_back(0);
  t.flags = flags;
  const bool was_empty = out_queue_.empty();
  out_queue_.push_back(t);
  ++to_sw_;
  if (was_empty) irq_trigger_.notify_delta();
}

// ------------------------------------------------------------ bus side --

void HwAdapter::handle(Txn& txn) {
  const std::uint64_t a = txn.addr;

  if (txn.op == Txn::Op::Write) {
    if (a >= layout_.data_in() &&
        a + txn.data.size() <= layout_.data_in() + layout_.window_bytes) {
      const std::size_t off = static_cast<std::size_t>(a - layout_.data_in());
      std::copy(txn.data.begin(), txn.data.end(), chunk_buf_.begin() + off);
      txn.respond_ok();
      return;
    }
    if (a == layout_.ctrl() && txn.data.size() >= 4) {
      const std::uint32_t ctrl = ocp::u32_from_le(txn.data.data());
      const std::uint32_t len = ctrl & HwSwFlags::kLenMask;
      if (len > layout_.window_bytes) {
        txn.respond_error();
        return;
      }
      rx_accum_.insert(rx_accum_.end(), chunk_buf_.begin(),
                       chunk_buf_.begin() + len);
      if (ctrl & HwSwFlags::kLastFlag) {
        Txn& m = sim().txn_pool().acquire();
        m.begin_msg(0);
        m.data.assign(rx_accum_.begin(), rx_accum_.end());
        m.flags = ctrl & ~HwSwFlags::kLenMask;
        rx_accum_.clear();
        ++from_sw_;
        if (ctrl & HwSwFlags::kReplyFlag) {
          rx_replies_.push_back(m);
          rx_reply_ev_.notify_delta();
        } else {
          rx_normal_.push_back(m);
          rx_normal_ev_.notify_delta();
        }
      }
      txn.respond_ok();
      return;
    }
    if (a == layout_.rack()) {
      if (Txn* head = out_queue_.front()) {
        const std::size_t remaining = head->data.size() - head->cursor;
        const std::size_t chunk =
            std::min<std::size_t>(remaining, layout_.window_bytes);
        head->cursor += static_cast<std::uint32_t>(chunk);
        if (head->cursor >= head->data.size()) {
          out_queue_.pop_front();
          sim().txn_pool().release(*head);
        }
        out_consumed_.notify_delta();
      }
      txn.respond_ok();
      return;
    }
    txn.respond_error();
    return;
  }

  if (txn.op == Txn::Op::Read) {
    if (a == layout_.rstatus()) {
      std::uint32_t status = 0;
      if (const Txn* head = out_queue_.front()) {
        status = static_cast<std::uint32_t>(head->data.size() - head->cursor) &
                 HwSwFlags::kLenMask;
        status |= head->flags & (HwSwFlags::kRequestFlag | HwSwFlags::kReplyFlag);
      }
      std::uint8_t bytes[4];
      ocp::u32_to_le(status, bytes);
      txn.respond_data(bytes, sizeof bytes);
      return;
    }
    if (a >= layout_.data_out() &&
        a + txn.read_bytes <= layout_.data_out() + layout_.window_bytes) {
      const std::size_t off = static_cast<std::size_t>(a - layout_.data_out());
      std::vector<std::uint8_t>& bytes = txn.respond_buffer(txn.read_bytes);
      if (const Txn* head = out_queue_.front()) {
        const std::size_t base = head->cursor + off;
        for (std::size_t i = 0; i < bytes.size(); ++i) {
          if (base + i < head->data.size()) bytes[i] = head->data[base + i];
        }
      }
      return;
    }
    txn.respond_error();
    return;
  }
  txn.respond_error();
}

// ----------------------------------------------------------- SHIP side --

void HwAdapter::mark_hw(ship::Role r, const char* call) {
  if (hw_role_ != ship::Role::Unknown && hw_role_ != r) {
    throw ProtocolError("SHIP role conflict on HW/SW interface " +
                        full_name() + ": HW PE called " + call);
  }
  hw_role_ = r;
}

Txn* HwAdapter::pop_rx(TxnQueue& q, Event& ev) {
  while (q.empty()) wait(ev);
  return q.pop_front();
}

void HwAdapter::send(const ship::ship_serializable_if& msg) {
  mark_hw(ship::Role::Master, "send");
  enqueue_outbound(msg, 0);
}

void HwAdapter::request(const ship::ship_serializable_if& req,
                        ship::ship_serializable_if& resp) {
  mark_hw(ship::Role::Master, "request");
  enqueue_outbound(req, HwSwFlags::kRequestFlag);
  Txn* m = pop_rx(rx_replies_, rx_reply_ev_);
  ship::from_bytes(resp, m->data);
  sim().txn_pool().release(*m);
}

void HwAdapter::recv(ship::ship_serializable_if& msg) {
  mark_hw(ship::Role::Slave, "recv");
  Txn* m = pop_rx(rx_normal_, rx_normal_ev_);
  if (m->flags & HwSwFlags::kRequestFlag) ++pending_replies_;
  ship::from_bytes(msg, m->data);
  sim().txn_pool().release(*m);
}

void HwAdapter::reply(const ship::ship_serializable_if& resp) {
  mark_hw(ship::Role::Slave, "reply");
  if (pending_replies_ == 0) {
    throw ProtocolError("HW/SW interface " + full_name() +
                        ": reply without outstanding request");
  }
  --pending_replies_;
  enqueue_outbound(resp, HwSwFlags::kReplyFlag);
}

}  // namespace stlm::hwsw
