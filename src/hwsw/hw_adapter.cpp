#include "hwsw/hw_adapter.hpp"

#include <algorithm>

namespace stlm::hwsw {

HwAdapter::HwAdapter(Simulator& sim, std::string name,
                     cam::MailboxLayout layout, Time irq_pulse)
    : Module(sim, std::move(name)),
      layout_(layout),
      irq_(sim, full_name() + ".irq", false),
      irq_pulse_(irq_pulse),
      irq_trigger_(sim, full_name() + ".irq_trigger"),
      chunk_buf_(layout.window_bytes, 0),
      rx_normal_ev_(sim, full_name() + ".rx_normal"),
      rx_reply_ev_(sim, full_name() + ".rx_reply"),
      out_consumed_(sim, full_name() + ".out_consumed") {
  STLM_ASSERT(!irq_pulse_.is_zero(), "IRQ pulse must be positive: " + full_name());
  spawn_thread("irq_pulser", [this] { irq_pulser(); });
}

void HwAdapter::irq_pulser() {
  for (;;) {
    wait(irq_trigger_);
    ++irqs_;
    irq_.write(true);
    wait(irq_pulse_);
    irq_.write(false);
    // Let the negedge settle so back-to-back messages produce distinct
    // rising edges.
    wait(irq_pulse_);
    if (!out_queue_.empty()) irq_trigger_.notify_delta();
  }
}

void HwAdapter::enqueue_outbound(std::vector<std::uint8_t> bytes,
                                 std::uint32_t flags) {
  // Even empty payloads must be observable through RSTATUS.
  if (bytes.empty()) bytes.push_back(0);
  const bool was_empty = out_queue_.empty();
  out_queue_.push_back(Message{std::move(bytes), flags});
  ++to_sw_;
  if (was_empty) irq_trigger_.notify_delta();
}

// ------------------------------------------------------------ bus side --

ocp::Response HwAdapter::handle(const ocp::Request& req) {
  const std::uint64_t a = req.addr;

  if (req.cmd == ocp::Cmd::Write) {
    if (a >= layout_.data_in() &&
        a + req.data.size() <= layout_.data_in() + layout_.window_bytes) {
      const std::size_t off = static_cast<std::size_t>(a - layout_.data_in());
      std::copy(req.data.begin(), req.data.end(), chunk_buf_.begin() + off);
      return ocp::Response::ok();
    }
    if (a == layout_.ctrl() && req.data.size() >= 4) {
      std::uint32_t ctrl = 0;
      for (int i = 3; i >= 0; --i) {
        ctrl = (ctrl << 8) | req.data[static_cast<std::size_t>(i)];
      }
      const std::uint32_t len = ctrl & HwSwFlags::kLenMask;
      if (len > layout_.window_bytes) return ocp::Response::error();
      rx_accum_.insert(rx_accum_.end(), chunk_buf_.begin(),
                       chunk_buf_.begin() + len);
      if (ctrl & HwSwFlags::kLastFlag) {
        Message m{std::move(rx_accum_), ctrl & ~HwSwFlags::kLenMask};
        rx_accum_.clear();
        ++from_sw_;
        if (ctrl & HwSwFlags::kReplyFlag) {
          rx_replies_.push_back(std::move(m));
          rx_reply_ev_.notify_delta();
        } else {
          rx_normal_.push_back(std::move(m));
          rx_normal_ev_.notify_delta();
        }
      }
      return ocp::Response::ok();
    }
    if (a == layout_.rack()) {
      if (!out_queue_.empty()) {
        auto& head = out_queue_.front().payload;
        const std::size_t chunk =
            std::min<std::size_t>(head.size(), layout_.window_bytes);
        head.erase(head.begin(), head.begin() + static_cast<std::ptrdiff_t>(chunk));
        if (head.empty()) out_queue_.pop_front();
        out_consumed_.notify_delta();
      }
      return ocp::Response::ok();
    }
    return ocp::Response::error();
  }

  if (req.cmd == ocp::Cmd::Read) {
    if (a == layout_.rstatus()) {
      std::uint32_t status = 0;
      if (!out_queue_.empty()) {
        const Message& head = out_queue_.front();
        status = static_cast<std::uint32_t>(head.payload.size()) &
                 HwSwFlags::kLenMask;
        status |= head.flags & (HwSwFlags::kRequestFlag | HwSwFlags::kReplyFlag);
      }
      std::vector<std::uint8_t> bytes(4);
      for (int i = 0; i < 4; ++i) {
        bytes[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(status >> (8 * i));
      }
      return ocp::Response::ok_with(std::move(bytes));
    }
    if (a >= layout_.data_out() &&
        a + req.read_bytes <= layout_.data_out() + layout_.window_bytes) {
      const std::size_t off = static_cast<std::size_t>(a - layout_.data_out());
      std::vector<std::uint8_t> bytes(req.read_bytes, 0);
      if (!out_queue_.empty()) {
        const auto& head = out_queue_.front().payload;
        for (std::size_t i = 0; i < bytes.size(); ++i) {
          if (off + i < head.size()) bytes[i] = head[off + i];
        }
      }
      return ocp::Response::ok_with(std::move(bytes));
    }
    return ocp::Response::error();
  }
  return ocp::Response::error();
}

// ----------------------------------------------------------- SHIP side --

void HwAdapter::mark_hw(ship::Role r, const char* call) {
  if (hw_role_ != ship::Role::Unknown && hw_role_ != r) {
    throw ProtocolError("SHIP role conflict on HW/SW interface " +
                        full_name() + ": HW PE called " + call);
  }
  hw_role_ = r;
}

void HwAdapter::send(const ship::ship_serializable_if& msg) {
  mark_hw(ship::Role::Master, "send");
  enqueue_outbound(ship::to_bytes(msg), 0);
}

void HwAdapter::request(const ship::ship_serializable_if& req,
                        ship::ship_serializable_if& resp) {
  mark_hw(ship::Role::Master, "request");
  enqueue_outbound(ship::to_bytes(req), HwSwFlags::kRequestFlag);
  while (rx_replies_.empty()) wait(rx_reply_ev_);
  Message m = std::move(rx_replies_.front());
  rx_replies_.pop_front();
  ship::from_bytes(resp, m.payload);
}

void HwAdapter::recv(ship::ship_serializable_if& msg) {
  mark_hw(ship::Role::Slave, "recv");
  while (rx_normal_.empty()) wait(rx_normal_ev_);
  Message m = std::move(rx_normal_.front());
  rx_normal_.pop_front();
  if (m.flags & HwSwFlags::kRequestFlag) ++pending_replies_;
  ship::from_bytes(msg, m.payload);
}

void HwAdapter::reply(const ship::ship_serializable_if& resp) {
  mark_hw(ship::Role::Slave, "reply");
  if (pending_replies_ == 0) {
    throw ProtocolError("HW/SW interface " + full_name() +
                        ": reply without outstanding request");
  }
  --pending_replies_;
  enqueue_outbound(ship::to_bytes(resp), HwSwFlags::kReplyFlag);
}

}  // namespace stlm::hwsw
