#pragma once
// HW adapter of the generic SHIP-based HW/SW interface (paper §4).
//
// "This interface virtually realizes a SHIP channel with one end in the
// HW partition and one end in the SW partition." The HW adapter is the
// hardware half: toward the system's communication architecture it is an
// OCP slave (shared-memory mailbox + control registers); toward the
// HW PE it presents the SHIP interface method calls; toward the CPU it
// raises a sideband interrupt when hardware-to-software data is ready.
//
// Register map (offsets from base):
//   +0x00  CTRL     W  inbound chunk: len[23:0] | last[24] | req[25] | rep[26]
//   +0x04  RSTATUS  R  outbound head: remaining[23:0] | req[25] | rep[26]
//   +0x08  RACK     W  outbound chunk consumed
//   +0x10  DATA_IN  W  inbound chunk window
//   +0x10+W DATA_OUT R outbound chunk window

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "cam/wrappers.hpp"
#include "kernel/module.hpp"
#include "kernel/signal.hpp"
#include "ship/channel.hpp"

namespace stlm::hwsw {

struct HwSwFlags {
  static constexpr std::uint32_t kLenMask = 0x00ffffff;
  static constexpr std::uint32_t kLastFlag = 1u << 24;
  static constexpr std::uint32_t kRequestFlag = 1u << 25;
  static constexpr std::uint32_t kReplyFlag = 1u << 26;
};

class HwAdapter final : public Module,
                        public ocp::ocp_tl_slave_if,
                        public ship::ship_if {
public:
  // `irq_pulse` is how long the sideband interrupt stays high (typically
  // one bus clock cycle).
  HwAdapter(Simulator& sim, std::string name, cam::MailboxLayout layout,
            Time irq_pulse);

  // Sideband interrupt toward the CPU's interrupt controller.
  Signal<bool>& irq() { return irq_; }
  const cam::MailboxLayout& layout() const { return layout_; }

  // --- OCP slave side (bus-facing; driven by the SW driver) -----------
  using ocp::ocp_tl_slave_if::handle;
  void handle(Txn& txn) override;
  // Register FSM is wait-free (decode + delta notifies; the timed waits
  // live in the irq pulser / SHIP-side processes), so the default
  // zero-latency fast_handle() is exact.
  bool fast_capable() const override { return true; }

  // --- SHIP side (HW PE-facing) ----------------------------------------
  void send(const ship::ship_serializable_if& msg) override;
  void recv(ship::ship_serializable_if& msg) override;
  void request(const ship::ship_serializable_if& req,
               ship::ship_serializable_if& resp) override;
  void reply(const ship::ship_serializable_if& resp) override;
  bool message_available() const override { return !rx_normal_.empty(); }
  ship::Role role() const override { return hw_role_; }
  const std::string& channel_name() const override { return Module::name(); }

  std::uint64_t irq_count() const { return irqs_; }
  std::uint64_t messages_to_sw() const { return to_sw_; }
  std::uint64_t messages_from_sw() const { return from_sw_; }

private:
  // Messages on both sides are pooled Txn descriptors: `data` holds the
  // payload, `flags` the HwSwFlags bits, `cursor` the bytes the consumer
  // already drained from the outbound head.
  void mark_hw(ship::Role r, const char* call);
  void enqueue_outbound(const ship::ship_serializable_if& msg,
                        std::uint32_t flags);
  Txn* pop_rx(TxnQueue& q, Event& ev);
  void irq_pulser();

  cam::MailboxLayout layout_;
  Signal<bool> irq_;
  Time irq_pulse_;
  Event irq_trigger_;

  // Inbound (SW -> HW).
  std::vector<std::uint8_t> chunk_buf_;
  std::vector<std::uint8_t> rx_accum_;
  TxnQueue rx_normal_;   // sends + requests from SW
  TxnQueue rx_replies_;  // replies from SW
  Event rx_normal_ev_;
  Event rx_reply_ev_;
  std::uint64_t pending_replies_ = 0;  // requests HW has recv'd, not replied

  // Outbound (HW -> SW).
  TxnQueue out_queue_;
  Event out_consumed_;

  ship::Role hw_role_ = ship::Role::Unknown;
  std::uint64_t irqs_ = 0;
  std::uint64_t to_sw_ = 0;
  std::uint64_t from_sw_ = 0;
};

}  // namespace stlm::hwsw
