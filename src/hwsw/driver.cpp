#include "hwsw/driver.hpp"

#include <algorithm>

namespace stlm::hwsw {

ShipDriver::ShipDriver(std::string name, rtos::Rtos& os, cpu::CpuModel& cpu,
                       cam::MailboxLayout mailbox, DriverConfig cfg)
    : name_(std::move(name)),
      os_(os),
      cpu_(cpu),
      mb_(mailbox),
      cfg_(cfg),
      rx_normal_sem_(os, name_ + ".rx_normal", 0),
      rx_reply_sem_(os, name_ + ".rx_reply", 0) {}

void ShipDriver::mark_sw(ship::Role r, const char* call) {
  if (sw_role_ != ship::Role::Unknown && sw_role_ != r) {
    throw ProtocolError("SHIP role conflict on driver " + name_ +
                        ": SW task called " + call);
  }
  sw_role_ = r;
}

void ShipDriver::push_to_hw(const ship::ship_serializable_if& msg,
                            std::uint32_t flags) {
  cpu_.consume(cfg_.call_overhead_cycles);
  // Serialize into the reusable scratch buffer; MMIO rides pooled Txns, so
  // the whole driver entry is allocation-free once warmed up.
  const std::size_t total = ship::to_bytes_into(msg, tx_buf_);
  const std::size_t w = mb_.window_bytes;
  std::size_t sent = 0;
  do {
    const std::size_t chunk = std::min(w, total - sent);
    if (chunk > 0) {
      cpu_.mmio_write_span(mb_.data_in(), tx_buf_.data() + sent, chunk);
    }
    sent += chunk;
    std::uint32_t ctrl = static_cast<std::uint32_t>(chunk) | flags;
    if (sent == total) ctrl |= HwSwFlags::kLastFlag;
    cpu_.mmio_write32(mb_.ctrl(), ctrl);
  } while (sent < total);
}

void ShipDriver::pop_and_deserialize(TxnQueue& q,
                                     ship::ship_serializable_if& msg) {
  Txn* m = q.pop_front();
  STLM_ASSERT(m != nullptr, "driver " + name_ + ": semaphore/queue mismatch");
  // Empty payloads travel as a single marker byte (RSTATUS visibility).
  if (m->data.size() == 1 && ship::serialized_size(msg) == 0) m->data.clear();
  ship::from_bytes(msg, m->data);
  cpu_.sim().txn_pool().release(*m);
}

void ShipDriver::send(const ship::ship_serializable_if& msg) {
  os_.require_task("ShipDriver::send");
  mark_sw(ship::Role::Master, "send");
  push_to_hw(msg, 0);
}

void ShipDriver::request(const ship::ship_serializable_if& req,
                         ship::ship_serializable_if& resp) {
  os_.require_task("ShipDriver::request");
  mark_sw(ship::Role::Master, "request");
  push_to_hw(req, HwSwFlags::kRequestFlag);
  rx_reply_sem_.wait();  // blocks the task; the ISR posts on reply
  pop_and_deserialize(rx_replies_, resp);
}

void ShipDriver::recv(ship::ship_serializable_if& msg) {
  os_.require_task("ShipDriver::recv");
  mark_sw(ship::Role::Slave, "recv");
  rx_normal_sem_.wait();
  pop_and_deserialize(rx_normal_, msg);
}

void ShipDriver::reply(const ship::ship_serializable_if& resp) {
  os_.require_task("ShipDriver::reply");
  mark_sw(ship::Role::Slave, "reply");
  if (pending_replies_ == 0) {
    throw ProtocolError("driver " + name_ + ": reply without outstanding request");
  }
  --pending_replies_;
  push_to_hw(resp, HwSwFlags::kReplyFlag);
}

void ShipDriver::on_irq() {
  ++isrs_;
  cpu_.consume(cfg_.isr_overhead_cycles);
  // Drain every complete outbound message the adapter currently holds.
  for (;;) {
    const std::uint32_t status = cpu_.mmio_read32(mb_.rstatus());
    std::uint32_t remaining = status & HwSwFlags::kLenMask;
    if (remaining == 0) break;
    const std::uint32_t flags = status & ~HwSwFlags::kLenMask;
    Txn& m = cpu_.sim().txn_pool().acquire();
    m.begin_msg(0);
    m.flags = flags;
    // `remaining` covers exactly this message; the adapter pops its head
    // only once the final chunk is acknowledged.
    while (remaining > 0) {
      const std::uint32_t chunk =
          std::min<std::uint32_t>(remaining, mb_.window_bytes);
      cpu_.mmio_read_append(mb_.data_out(), chunk, m.data);
      cpu_.mmio_write32(mb_.rack(), 0);
      remaining -= chunk;
    }
    ++rx_count_;
    if (flags & HwSwFlags::kReplyFlag) {
      rx_replies_.push_back(m);
      rx_reply_sem_.post_from_isr();
    } else {
      rx_normal_.push_back(m);
      if (flags & HwSwFlags::kRequestFlag) ++pending_replies_;
      rx_normal_sem_.post_from_isr();
    }
  }
}

}  // namespace stlm::hwsw
