#include "hwsw/driver.hpp"

#include <algorithm>

namespace stlm::hwsw {

ShipDriver::ShipDriver(std::string name, rtos::Rtos& os, cpu::CpuModel& cpu,
                       cam::MailboxLayout mailbox, DriverConfig cfg)
    : name_(std::move(name)),
      os_(os),
      cpu_(cpu),
      mb_(mailbox),
      cfg_(cfg),
      rx_normal_sem_(os, name_ + ".rx_normal", 0),
      rx_reply_sem_(os, name_ + ".rx_reply", 0) {}

std::vector<std::uint8_t> ShipDriver::ctrl_word(std::uint32_t v) {
  std::vector<std::uint8_t> bytes(4);
  for (int i = 0; i < 4; ++i) {
    bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (8 * i));
  }
  return bytes;
}

void ShipDriver::mark_sw(ship::Role r, const char* call) {
  if (sw_role_ != ship::Role::Unknown && sw_role_ != r) {
    throw ProtocolError("SHIP role conflict on driver " + name_ +
                        ": SW task called " + call);
  }
  sw_role_ = r;
}

void ShipDriver::push_to_hw(const ship::ship_serializable_if& msg,
                            std::uint32_t flags) {
  cpu_.consume(cfg_.call_overhead_cycles);
  const std::vector<std::uint8_t> bytes = ship::to_bytes(msg);
  const std::size_t w = mb_.window_bytes;
  std::size_t sent = 0;
  do {
    const std::size_t chunk = std::min(w, bytes.size() - sent);
    if (chunk > 0) {
      cpu_.mmio_write(mb_.data_in(),
                      std::vector<std::uint8_t>(
                          bytes.begin() + static_cast<std::ptrdiff_t>(sent),
                          bytes.begin() + static_cast<std::ptrdiff_t>(sent + chunk)));
    }
    sent += chunk;
    std::uint32_t ctrl = static_cast<std::uint32_t>(chunk) | flags;
    if (sent == bytes.size()) ctrl |= HwSwFlags::kLastFlag;
    cpu_.mmio_write(mb_.ctrl(), ctrl_word(ctrl));
  } while (sent < bytes.size());
}

void ShipDriver::send(const ship::ship_serializable_if& msg) {
  os_.require_task("ShipDriver::send");
  mark_sw(ship::Role::Master, "send");
  push_to_hw(msg, 0);
}

void ShipDriver::request(const ship::ship_serializable_if& req,
                         ship::ship_serializable_if& resp) {
  os_.require_task("ShipDriver::request");
  mark_sw(ship::Role::Master, "request");
  push_to_hw(req, HwSwFlags::kRequestFlag);
  rx_reply_sem_.wait();  // blocks the task; the ISR posts on reply
  std::vector<std::uint8_t> bytes = std::move(rx_replies_.front());
  rx_replies_.pop_front();
  if (bytes.size() == 1 && ship::serialized_size(resp) == 0) bytes.clear();
  ship::from_bytes(resp, bytes);
}

void ShipDriver::recv(ship::ship_serializable_if& msg) {
  os_.require_task("ShipDriver::recv");
  mark_sw(ship::Role::Slave, "recv");
  rx_normal_sem_.wait();
  std::vector<std::uint8_t> bytes = std::move(rx_normal_.front());
  rx_normal_.pop_front();
  if (bytes.size() == 1 && ship::serialized_size(msg) == 0) bytes.clear();
  ship::from_bytes(msg, bytes);
}

void ShipDriver::reply(const ship::ship_serializable_if& resp) {
  os_.require_task("ShipDriver::reply");
  mark_sw(ship::Role::Slave, "reply");
  if (pending_replies_ == 0) {
    throw ProtocolError("driver " + name_ + ": reply without outstanding request");
  }
  --pending_replies_;
  push_to_hw(resp, HwSwFlags::kReplyFlag);
}

void ShipDriver::on_irq() {
  ++isrs_;
  cpu_.consume(cfg_.isr_overhead_cycles);
  // Drain every complete outbound message the adapter currently holds.
  for (;;) {
    const std::uint32_t status = cpu_.mmio_read32(mb_.rstatus());
    std::uint32_t remaining = status & HwSwFlags::kLenMask;
    if (remaining == 0) break;
    const std::uint32_t flags = status & ~HwSwFlags::kLenMask;
    std::vector<std::uint8_t> bytes;
    // `remaining` covers exactly this message; the adapter pops its head
    // only once the final chunk is acknowledged.
    while (remaining > 0) {
      const std::uint32_t chunk =
          std::min<std::uint32_t>(remaining, mb_.window_bytes);
      std::vector<std::uint8_t> part = cpu_.mmio_read(mb_.data_out(), chunk);
      bytes.insert(bytes.end(), part.begin(), part.end());
      cpu_.mmio_write(mb_.rack(), ctrl_word(0));
      remaining -= chunk;
    }
    ++rx_count_;
    if (flags & HwSwFlags::kReplyFlag) {
      rx_replies_.push_back(std::move(bytes));
      rx_reply_sem_.post_from_isr();
    } else {
      rx_normal_.push_back(std::move(bytes));
      if (flags & HwSwFlags::kRequestFlag) ++pending_replies_;
      rx_normal_sem_.post_from_isr();
    }
  }
}

}  // namespace stlm::hwsw
