#pragma once
// SW adapter of the HW/SW interface: device driver + communication
// library (paper §4).
//
// "While handshaking and memory-mapping is accomplished by the device
// driver, the communication library implements the SHIP channel interface
// method calls." ShipDriver is both: it implements ship_if for RTOS tasks
// (so SW PE code is byte-for-byte the code that ran in the
// component-assembly model) and contains the interrupt service routine
// that drains the HW adapter's outbound mailbox.
//
// Wiring: attach the driver's ISR to the interrupt line, e.g.
//   rtos.attach_isr(irq_ctrl, [&](int line){ if (line == n) drv.on_irq(); });

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "cam/wrappers.hpp"
#include "cpu/cpu.hpp"
#include "hwsw/hw_adapter.hpp"
#include "rtos/rtos.hpp"
#include "ship/channel.hpp"

namespace stlm::hwsw {

struct DriverConfig {
  // CPU cycles charged per driver entry (syscall + copy overhead).
  std::uint64_t call_overhead_cycles = 50;
  // CPU cycles charged per ISR invocation.
  std::uint64_t isr_overhead_cycles = 80;
};

class ShipDriver final : public ship::ship_if {
public:
  ShipDriver(std::string name, rtos::Rtos& os, cpu::CpuModel& cpu,
             cam::MailboxLayout mailbox, DriverConfig cfg = {});

  // --- SHIP interface method calls (RTOS task context) -----------------
  void send(const ship::ship_serializable_if& msg) override;
  void recv(ship::ship_serializable_if& msg) override;
  void request(const ship::ship_serializable_if& req,
               ship::ship_serializable_if& resp) override;
  void reply(const ship::ship_serializable_if& resp) override;
  bool message_available() const override { return !rx_normal_.empty(); }
  ship::Role role() const override { return sw_role_; }
  const std::string& channel_name() const override { return name_; }

  // --- interrupt service routine (ISR context) -------------------------
  void on_irq();

  std::uint64_t isr_count() const { return isrs_; }
  std::uint64_t messages_rx() const { return rx_count_; }

private:
  void mark_sw(ship::Role r, const char* call);
  void push_to_hw(const ship::ship_serializable_if& msg, std::uint32_t flags);
  void pop_and_deserialize(TxnQueue& q, ship::ship_serializable_if& msg);

  std::string name_;
  rtos::Rtos& os_;
  cpu::CpuModel& cpu_;
  cam::MailboxLayout mb_;
  DriverConfig cfg_;

  rtos::Semaphore rx_normal_sem_;
  rtos::Semaphore rx_reply_sem_;
  // Received messages are pooled Txn descriptors (data = payload bytes).
  TxnQueue rx_normal_;
  TxnQueue rx_replies_;
  std::vector<std::uint8_t> tx_buf_;  // reusable serialization scratch
  std::uint64_t pending_replies_ = 0;

  ship::Role sw_role_ = ship::Role::Unknown;
  std::uint64_t isrs_ = 0;
  std::uint64_t rx_count_ = 0;
};

}  // namespace stlm::hwsw
