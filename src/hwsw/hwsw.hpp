#pragma once
// Umbrella header for the HW/SW interface library.

#include "hwsw/driver.hpp"
#include "hwsw/hw_adapter.hpp"
