#pragma once
// Initiator-side failure policy: bounded retries with exponential backoff
// in *simulated* time, plus per-transaction timeout watchdogs on
// outstanding transactions, both parameterized by fault::RetrySpec.
//
// A RetryPolicy is an OCP TL shim: it implements ocp_tl_master_if and
// forwards to a downstream master port (a CAM access point), so it drops
// between any blocking initiator and the fabric without touching PE code
// — the mapper rebinds CpuModel::bus() and the SHIP master wrappers to
// the policy when the platform carries an active RetrySpec. Posted
// (split-window) initiators use the post()/settle() pair instead: post()
// arms the watchdog and forwards to CamIf::post(); settle(), called by
// the initiator after done.wait(), classifies the outcome and performs
// any retries inline (blocking, from the initiator's coroutine).
//
// Semantics:
//   * Retry only on Status::Error. Attempt k (1-based) backs off
//     backoff_cycles << (k-1) bus cycles of simulated time, then re-arms
//     the same descriptor (Txn::rearm_retry — the id survives, so trace
//     rows of all attempts correlate) and re-issues. After max_retries
//     failed re-issues the policy stamps Status::Aborted and returns.
//     max_retries == 0 disables retrying: errors pass through unchanged.
//   * The watchdog (timeout != zero) is a kernel timed event, not
//     polling: arming notifies a single timer at the earliest armed
//     deadline; the firing method marks every overdue outstanding
//     descriptor `deadline_missed` and emits a "timeout" trace instant.
//     The CAM completion point promotes Ok -> Timeout from the mark, so
//     a late-but-correct access reports Timeout (and data_valid()) and
//     is NOT retried. A completion at exactly the deadline instant
//     counts as missed (methods dispatch before threads).
//
// Determinism: the policy introduces no randomness; backoff delays are
// pure functions of the attempt number, and the watchdog timer fires at
// deadlines derived from simulated time only.

#include <cstdint>
#include <vector>

#include "cam/cam_if.hpp"
#include "fault/fault.hpp"
#include "kernel/module.hpp"

namespace stlm::cam {

class RetryPolicy final : public Module, public ocp::ocp_tl_master_if {
public:
  // `cycle` is the downstream bus clock period — the unit backoff delays
  // are charged in.
  RetryPolicy(Simulator& sim, std::string name, fault::RetrySpec spec,
              Time cycle);

  // Blocking path: forward transport() to `downstream` with the retry
  // loop around it.
  void bind(ocp::ocp_tl_master_if& downstream) { down_ = &downstream; }
  // Posted path: post()/settle() issue on `bus` as master `master`.
  void bind_posted(CamIf& bus, std::size_t master) {
    bus_ = &bus;
    master_ = master;
  }

  // --- blocking initiators --------------------------------------------
  using ocp::ocp_tl_master_if::transport;
  void transport(Txn& txn) override;

  // --- posted initiators ----------------------------------------------
  // Arm the watchdog and enqueue `txn` (CamIf::post contract applies).
  void post(Txn& txn);
  // Classify a completed posted transaction; must be called from the
  // initiator's process after txn.done.wait(). Performs retries inline
  // (blocking) and stamps Aborted on exhaustion.
  void settle(Txn& txn);

  const fault::RetrySpec& spec() const { return spec_; }
  // Policy-local outcome counters (not bus statistics: they belong to
  // the initiator side and stay off the CAM's report strings).
  std::uint64_t errors_seen() const { return errors_; }
  std::uint64_t retries_issued() const { return retries_; }
  std::uint64_t timeouts_observed() const { return timeouts_; }
  std::uint64_t aborts() const { return aborts_; }

private:
  struct Armed {
    Txn* txn;
    Time deadline;
    Time armed_at;
  };

  bool watching() const { return spec_.timeout != Time::zero(); }
  void arm(Txn& txn);
  void disarm(Txn& txn);  // also emits the retrospective watchdog span
  void watchdog_fire();   // timer method: mark overdue descriptors
  void renotify(Time now);
  // True when `txn` failed retryably and the policy re-armed + backed
  // off; false when the outcome is final (possibly stamped Aborted).
  bool prepare_retry(Txn& txn);

  fault::RetrySpec spec_;
  Time cycle_;
  ocp::ocp_tl_master_if* down_ = nullptr;
  CamIf* bus_ = nullptr;
  std::size_t master_ = 0;
  Event timer_;
  std::vector<Armed> armed_;
  std::uint64_t errors_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t aborts_ = 0;
};

}  // namespace stlm::cam
