#pragma once
// PLB->OPB bridge (CoreConnect style).
//
// Attached to a fast bus (PLB) as a slave covering the peripheral address
// space; forwards each transaction into the slow bus (OPB) through its own
// master port, adding a fixed crossing latency. This reproduces the
// two-tier CoreConnect topology the paper's flow targets.

#include <string>

#include "cam/cam_if.hpp"
#include "kernel/module.hpp"

namespace stlm::cam {

class BusBridge final : public Module, public ocp::ocp_tl_slave_if {
public:
  // Registers itself as master `name` on `downstream` and must then be
  // attached to the upstream bus via attach_slave(bridge, range).
  BusBridge(Simulator& sim, std::string name, CamIf& downstream,
            std::uint32_t crossing_cycles = 2);

  using ocp::ocp_tl_slave_if::handle;
  void handle(Txn& txn) override;

  std::uint64_t forwarded() const { return forwarded_; }

private:
  CamIf& down_;
  std::size_t down_master_;
  std::uint32_t crossing_cycles_;
  std::uint64_t forwarded_ = 0;
};

}  // namespace stlm::cam
