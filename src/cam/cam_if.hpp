#pragma once
// Common interface of every communication architecture model.
//
// A CAM is a simulation model of a bus or network that is cycle-count
// accurate at transaction boundaries (CCATB): externally each transaction
// completes after the exact number of bus cycles the modeled protocol
// needs; internally only timed method calls are used — no per-cycle
// activity — which is where the simulation speed comes from.
//
// PEs attach through OCP TL master ports; targets attach as OCP TL slaves
// with an address range. Wrappers (ship<->ocp, pin<->tl) let "virtually
// any PE" connect regardless of its native interface (paper §3).

#include <cstdint>
#include <string>

#include "cam/address_map.hpp"
#include "kernel/time.hpp"
#include "ocp/tl_if.hpp"
#include "trace/stats.hpp"
#include "trace/txn_log.hpp"

namespace stlm::cam {

class CamIf {
public:
  virtual ~CamIf() = default;

  // Register a new master; returns its index.
  virtual std::size_t add_master(const std::string& name) = 0;
  // Access point for master `i` (bind a PE's OcpMasterPort to this).
  virtual ocp::ocp_tl_master_if& master_port(std::size_t i) = 0;
  virtual std::size_t master_count() const = 0;

  // Attach a slave device at an address range.
  virtual void attach_slave(ocp::ocp_tl_slave_if& slave, AddressRange range,
                            const std::string& label) = 0;

  virtual const std::string& name() const = 0;
  virtual Time cycle() const = 0;
  virtual const AddressMap& address_map() const = 0;

  virtual trace::StatSet& stats() = 0;
  virtual void set_txn_logger(trace::TxnLogger* log) = 0;

  // Fraction of elapsed bus cycles spent moving transactions.
  virtual double utilization() const = 0;
};

}  // namespace stlm::cam
