#pragma once
// Common interface of every communication architecture model.
//
// A CAM is a simulation model of a bus or network that is cycle-count
// accurate at transaction boundaries (CCATB): externally each transaction
// completes after the exact number of bus cycles the modeled protocol
// needs; internally only timed method calls are used — no per-cycle
// activity — which is where the simulation speed comes from.
//
// PEs attach through OCP TL master ports; targets attach as OCP TL slaves
// with an address range. Wrappers (ship<->ocp, pin<->tl) let "virtually
// any PE" connect regardless of its native interface (paper §3).

#include <cstdint>
#include <string>

#include "cam/address_map.hpp"
#include "kernel/time.hpp"
#include "ocp/tl_if.hpp"
#include "trace/stats.hpp"
#include "trace/txn_log.hpp"

namespace stlm::fault {
class Injector;
}  // namespace stlm::fault

namespace stlm::cam {

/// Map a completed descriptor's kernel-side status onto the trace
/// schema's outcome column. A logged row is by definition settled, so a
/// still-Pending status (a CAM forgot to stamp) degrades to Ok rather
/// than inventing a fifth CSV value.
inline trace::TxnStatus txn_row_status(const Txn& txn) {
  switch (txn.status) {
    case Txn::Status::Error:
      return trace::TxnStatus::Error;
    case Txn::Status::Timeout:
      return trace::TxnStatus::Timeout;
    case Txn::Status::Aborted:
      return trace::TxnStatus::Aborted;
    case Txn::Status::Pending:
    case Txn::Status::Ok:
      break;
  }
  return trace::TxnStatus::Ok;
}

/// Abstract interface of a communication architecture model (bus,
/// crossbar, bridge fabric). One CamIf instance is one arbitrated
/// interconnect; masters attach via numbered access points, targets via
/// address ranges.
class CamIf {
public:
  virtual ~CamIf() = default;

  /// Register a new master access point.
  /// @param name  label used for per-master statistics slots
  /// @return the master's index (stable for the CAM's lifetime)
  virtual std::size_t add_master(const std::string& name) = 0;

  /// Access point for master `i`; bind a PE's OcpMasterPort to this.
  /// Its transport() blocks the calling process until the transaction
  /// completes on the modeled interconnect.
  virtual ocp::ocp_tl_master_if& master_port(std::size_t i) = 0;
  virtual std::size_t master_count() const = 0;

  /// Label master `i` was registered with — the suffix of its per-master
  /// statistics slot and of its "<bus>.<label>" supplementary log channel.
  virtual const std::string& master_label(std::size_t i) const = 0;

  /// Attach a slave device decoding `range`; later transactions whose
  /// address falls inside the range are delivered to `slave.handle()`.
  virtual void attach_slave(ocp::ocp_tl_slave_if& slave, AddressRange range,
                            const std::string& label) = 0;

  /// Non-blocking issue for split/out-of-order masters: enqueue `txn` on
  /// master `master` and return without waiting; the initiator
  /// synchronizes with `txn.done.wait(sim)` (completions may arrive out
  /// of order across the initiator's outstanding set). The descriptor
  /// must stay alive and untouched until completion. On configurations
  /// without split support the call may run the transaction to
  /// completion before returning — `done` is then already complete, so
  /// the same initiator code works on every bus. A bus may block the
  /// caller when it is at its per-master outstanding cap.
  virtual void post(std::size_t master, Txn& txn) = 0;

  virtual const std::string& name() const = 0;
  /// Bus clock period of this interconnect.
  virtual Time cycle() const = 0;
  virtual const AddressMap& address_map() const = 0;

  /// Mutable statistic set (counters + accumulators) of this CAM.
  virtual trace::StatSet& stats() = 0;
  /// Route per-transaction begin/end records into `log` (nullptr stops).
  virtual void set_txn_logger(trace::TxnLogger* log) = 0;

  /// Attach a seeded fault source (fault/fault.hpp): slaves consult it
  /// per access (error responses, latency spikes) and the grant logic per
  /// grant (stall bursts). nullptr detaches; the default ignores it, so
  /// CAMs without failure semantics stay valid. While an injector is
  /// attached a CAM must disable constant-latency fast paths — injected
  /// spikes break their fixed-latency contract.
  virtual void set_fault_injector(fault::Injector* /*inj*/) {}

  /// Fraction of elapsed bus cycles spent moving transactions.
  virtual double utilization() const = 0;
};

}  // namespace stlm::cam
