#include "cam/retry.hpp"

#include <algorithm>

#include "obs/trace_session.hpp"

namespace stlm::cam {

RetryPolicy::RetryPolicy(Simulator& sim, std::string name,
                         fault::RetrySpec spec, Time cycle)
    : Module(sim, std::move(name)),
      spec_(spec),
      cycle_(cycle),
      timer_(sim, full_name() + ".watchdog") {
  STLM_ASSERT(!cycle_.is_zero(),
              "retry policy needs a positive bus cycle: " + full_name());
  if (watching()) {
    spawn_method("watchdog", [this] { watchdog_fire(); }, {&timer_},
                 /*run_at_start=*/false);
  }
}

void RetryPolicy::arm(Txn& txn) {
  const Time now = sim().now();
  armed_.push_back(Armed{&txn, now + spec_.timeout, now});
  // Timed notifications keep the earliest pending instant, so blindly
  // notifying per arm always leaves the timer on the nearest deadline.
  timer_.notify(spec_.timeout);
}

void RetryPolicy::disarm(Txn& txn) {
  const auto it =
      std::find_if(armed_.begin(), armed_.end(),
                   [&txn](const Armed& a) { return a.txn == &txn; });
  if (it == armed_.end()) return;  // settle() on an unwatched descriptor
#ifdef STLM_OBS
  // Retrospective span covering the watched window: armed -> settled.
  // When the deadline was missed, the "timeout" instant (stamped at the
  // deadline by watchdog_fire) falls inside this span by construction —
  // the containment tools/check_trace.py verifies.
  if (obs::TraceSession* ts = sim().trace_session(); ts != nullptr) {
    ts->async_span(full_name(), "watchdog", txn.id, it->armed_at, sim().now());
  }
#endif
  armed_.erase(it);
  // Re-aim (or drop) the timer so a settled descriptor's stale deadline
  // cannot keep the simulation alive past the last real event.
  renotify(sim().now());
}

void RetryPolicy::watchdog_fire() {
  const Time now = sim().now();
  for (Armed& a : armed_) {
    if (a.deadline > now) continue;
    if (a.txn->deadline_missed || a.txn->done.completed()) continue;
    a.txn->deadline_missed = true;
    ++timeouts_;
#ifdef STLM_OBS
    if (obs::TraceSession* ts = sim().trace_session(); ts != nullptr) {
      ts->instant(full_name(), "timeout", now);
    }
#endif
  }
  renotify(now);
}

void RetryPolicy::renotify(Time now) {
  timer_.cancel();  // drop any notification aimed at a settled deadline
  bool found = false;
  Time next = Time::zero();
  for (const Armed& a : armed_) {
    if (a.deadline <= now) continue;
    if (!found || a.deadline < next) {
      next = a.deadline;
      found = true;
    }
  }
  if (found) timer_.notify(next - now);
}

bool RetryPolicy::prepare_retry(Txn& txn) {
  if (spec_.max_retries == 0) return false;  // watchdog-only policy
  if (txn.retries >= spec_.max_retries) {
    txn.status = Txn::Status::Aborted;
    ++aborts_;
#ifdef STLM_OBS
    if (obs::TraceSession* ts = sim().trace_session(); ts != nullptr) {
      ts->instant(full_name(), "abort", sim().now());
    }
#endif
    return false;
  }
  // Exponential backoff in simulated time: attempt k (1-based) re-issues
  // after backoff_cycles << (k-1) bus cycles.
  const std::uint64_t cycles = spec_.backoff_cycles << txn.retries;
  if (cycles != 0) wait(cycle_ * cycles);
  txn.rearm_retry();
  ++retries_;
#ifdef STLM_OBS
  if (obs::TraceSession* ts = sim().trace_session(); ts != nullptr) {
    ts->instant(full_name(), "retry", sim().now());
  }
#endif
  return true;
}

void RetryPolicy::transport(Txn& txn) {
  STLM_ASSERT(down_ != nullptr,
              "retry policy has no downstream port: " + full_name());
  for (;;) {
    if (watching()) arm(txn);
    down_->transport(txn);
    if (watching()) disarm(txn);
    if (txn.status != Txn::Status::Error) return;
    ++errors_;
    if (!prepare_retry(txn)) return;
  }
}

void RetryPolicy::post(Txn& txn) {
  STLM_ASSERT(bus_ != nullptr,
              "retry policy has no posted binding: " + full_name());
  if (watching()) arm(txn);
  bus_->post(master_, txn);
}

void RetryPolicy::settle(Txn& txn) {
  if (watching()) disarm(txn);
  while (txn.status == Txn::Status::Error) {
    ++errors_;
    if (!prepare_retry(txn)) return;
    // Re-issues run inline from the initiator's coroutine: the window
    // slot is already drained, so a blocking round trip here keeps the
    // initiator's posting depth intact.
    if (watching()) arm(txn);
    bus_->post(master_, txn);
    txn.done.wait(sim());
    if (watching()) disarm(txn);
  }
}

}  // namespace stlm::cam
