#pragma once
// Bus arbitration policies for the CAM library.
//
// An arbiter picks the next master among those with pending requests.
// Policies are interchangeable per bus instance, which is one axis of the
// paper's communication architecture exploration.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernel/report.hpp"

namespace stlm::cam {

/// Bus arbitration policy. Stateless from the bus's point of view: the
/// grant engine passes the mask of masters that may be granted *now*
/// and the policy picks one. In split mode the mask already excludes
/// masters at their outstanding cap, so one policy implementation
/// serves both the atomic and the split engines unchanged.
class Arbiter {
public:
  virtual ~Arbiter() = default;

  /// Pick the next master to grant.
  /// @param requesting  requesting[i] is true if master i is eligible
  ///                    (has a pending transaction, and in split mode
  ///                    is under its outstanding cap)
  /// @param cycle       current bus cycle (used by time-sliced policies)
  /// @return the granted master index, or -1 if none requesting
  virtual int pick(const std::vector<bool>& requesting, std::uint64_t cycle) = 0;
  /// Policy name for reports ("priority", "round-robin", "tdma").
  virtual std::string name() const = 0;
};

/// Static priority: lowest index wins (index order = priority order).
class PriorityArbiter final : public Arbiter {
public:
  int pick(const std::vector<bool>& requesting, std::uint64_t) override {
    for (std::size_t i = 0; i < requesting.size(); ++i) {
      if (requesting[i]) return static_cast<int>(i);
    }
    return -1;
  }
  std::string name() const override { return "priority"; }
};

/// Round robin: rotate the highest priority after each grant.
class RoundRobinArbiter final : public Arbiter {
public:
  int pick(const std::vector<bool>& requesting, std::uint64_t) override {
    const std::size_t n = requesting.size();
    for (std::size_t k = 1; k <= n; ++k) {
      const std::size_t i = (last_ + k) % n;
      if (requesting[i]) {
        last_ = i;
        return static_cast<int>(i);
      }
    }
    return -1;
  }
  std::string name() const override { return "round-robin"; }

private:
  std::size_t last_ = 0;
};

/// TDMA: a repeating slot table of master ids; the slot owner wins its
/// slot, otherwise round robin among the others (slot reclamation).
class TdmaArbiter final : public Arbiter {
public:
  TdmaArbiter(std::vector<std::size_t> slot_table, std::uint64_t slot_cycles)
      : table_(std::move(slot_table)), slot_cycles_(slot_cycles) {
    STLM_ASSERT(!table_.empty(), "TDMA slot table must not be empty");
    STLM_ASSERT(slot_cycles_ > 0, "TDMA slot length must be positive");
  }

  int pick(const std::vector<bool>& requesting, std::uint64_t cycle) override {
    const std::size_t slot = (cycle / slot_cycles_) % table_.size();
    const std::size_t owner = table_[slot];
    if (owner < requesting.size() && requesting[owner]) {
      return static_cast<int>(owner);
    }
    return fallback_.pick(requesting, cycle);
  }
  std::string name() const override { return "tdma"; }

private:
  std::vector<std::size_t> table_;
  std::uint64_t slot_cycles_;
  RoundRobinArbiter fallback_;
};

/// Static priority with aging (QoS): lowest index wins — unless some
/// requester has been waiting at least `aging_cycles` bus cycles since
/// it first requested, in which case the longest-waiting starved
/// requester wins (ties broken by lower index). `aging_cycles == 0`
/// degenerates to pure FCFS by first-request cycle.
class AgingPriorityArbiter final : public Arbiter {
public:
  explicit AgingPriorityArbiter(std::uint64_t aging_cycles)
      : aging_cycles_(aging_cycles) {}

  int pick(const std::vector<bool>& requesting, std::uint64_t cycle) override {
    if (since_.size() < requesting.size()) {
      since_.resize(requesting.size(), kIdle);
    }
    // Track when each master's current request first became visible; a
    // master that stops requesting (granted elsewhere / withdrawn)
    // resets its age.
    int first = -1;
    for (std::size_t i = 0; i < requesting.size(); ++i) {
      if (!requesting[i]) {
        since_[i] = kIdle;
        continue;
      }
      if (since_[i] == kIdle) since_[i] = cycle;
      if (first < 0) first = static_cast<int>(i);
    }
    if (first < 0) return -1;
    int aged = -1;
    for (std::size_t i = 0; i < requesting.size(); ++i) {
      if (!requesting[i] || cycle - since_[i] < aging_cycles_) continue;
      if (aged < 0 || since_[i] < since_[static_cast<std::size_t>(aged)]) {
        aged = static_cast<int>(i);
      }
    }
    const int winner = aged >= 0 ? aged : first;
    since_[static_cast<std::size_t>(winner)] = kIdle;
    return winner;
  }
  std::string name() const override { return "aging"; }

private:
  static constexpr std::uint64_t kIdle = static_cast<std::uint64_t>(-1);
  std::uint64_t aging_cycles_;
  std::vector<std::uint64_t> since_;  // first-request cycle per master
};

/// Bandwidth reservation (QoS): deficit-credit weighted arbitration.
/// Master i accrues `shares[i]` credits every pick it spends requesting;
/// the requester with the most credits wins (ties broken by lower index)
/// and pays the round's total requested share, so grant frequencies
/// converge to the share ratios under saturation while staying strictly
/// work-conserving and deterministic (integer arithmetic only). Masters
/// beyond the shares table default to share 1.
class BandwidthArbiter final : public Arbiter {
public:
  explicit BandwidthArbiter(std::vector<std::uint32_t> shares)
      : shares_(std::move(shares)) {}

  int pick(const std::vector<bool>& requesting, std::uint64_t) override {
    if (credit_.size() < requesting.size()) credit_.resize(requesting.size());
    int winner = -1;
    std::int64_t round = 0;
    for (std::size_t i = 0; i < requesting.size(); ++i) {
      if (!requesting[i]) continue;
      credit_[i] += share(i);
      round += share(i);
      if (winner < 0 || credit_[i] > credit_[static_cast<std::size_t>(winner)]) {
        winner = static_cast<int>(i);
      }
    }
    if (winner < 0) return -1;
    credit_[static_cast<std::size_t>(winner)] -= round;
    return winner;
  }
  std::string name() const override { return "bandwidth"; }

private:
  std::int64_t share(std::size_t i) const {
    if (i >= shares_.size() || shares_[i] == 0) return 1;
    return static_cast<std::int64_t>(shares_[i]);
  }
  std::vector<std::uint32_t> shares_;
  std::vector<std::int64_t> credit_;
};

}  // namespace stlm::cam
