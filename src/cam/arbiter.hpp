#pragma once
// Bus arbitration policies for the CAM library.
//
// An arbiter picks the next master among those with pending requests.
// Policies are interchangeable per bus instance, which is one axis of the
// paper's communication architecture exploration.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernel/report.hpp"

namespace stlm::cam {

/// Bus arbitration policy. Stateless from the bus's point of view: the
/// grant engine passes the mask of masters that may be granted *now*
/// and the policy picks one. In split mode the mask already excludes
/// masters at their outstanding cap, so one policy implementation
/// serves both the atomic and the split engines unchanged.
class Arbiter {
public:
  virtual ~Arbiter() = default;

  /// Pick the next master to grant.
  /// @param requesting  requesting[i] is true if master i is eligible
  ///                    (has a pending transaction, and in split mode
  ///                    is under its outstanding cap)
  /// @param cycle       current bus cycle (used by time-sliced policies)
  /// @return the granted master index, or -1 if none requesting
  virtual int pick(const std::vector<bool>& requesting, std::uint64_t cycle) = 0;
  /// Policy name for reports ("priority", "round-robin", "tdma").
  virtual std::string name() const = 0;
};

/// Static priority: lowest index wins (index order = priority order).
class PriorityArbiter final : public Arbiter {
public:
  int pick(const std::vector<bool>& requesting, std::uint64_t) override {
    for (std::size_t i = 0; i < requesting.size(); ++i) {
      if (requesting[i]) return static_cast<int>(i);
    }
    return -1;
  }
  std::string name() const override { return "priority"; }
};

/// Round robin: rotate the highest priority after each grant.
class RoundRobinArbiter final : public Arbiter {
public:
  int pick(const std::vector<bool>& requesting, std::uint64_t) override {
    const std::size_t n = requesting.size();
    for (std::size_t k = 1; k <= n; ++k) {
      const std::size_t i = (last_ + k) % n;
      if (requesting[i]) {
        last_ = i;
        return static_cast<int>(i);
      }
    }
    return -1;
  }
  std::string name() const override { return "round-robin"; }

private:
  std::size_t last_ = 0;
};

/// TDMA: a repeating slot table of master ids; the slot owner wins its
/// slot, otherwise round robin among the others (slot reclamation).
class TdmaArbiter final : public Arbiter {
public:
  TdmaArbiter(std::vector<std::size_t> slot_table, std::uint64_t slot_cycles)
      : table_(std::move(slot_table)), slot_cycles_(slot_cycles) {
    STLM_ASSERT(!table_.empty(), "TDMA slot table must not be empty");
    STLM_ASSERT(slot_cycles_ > 0, "TDMA slot length must be positive");
  }

  int pick(const std::vector<bool>& requesting, std::uint64_t cycle) override {
    const std::size_t slot = (cycle / slot_cycles_) % table_.size();
    const std::size_t owner = table_[slot];
    if (owner < requesting.size() && requesting[owner]) {
      return static_cast<int>(owner);
    }
    return fallback_.pick(requesting, cycle);
  }
  std::string name() const override { return "tdma"; }

private:
  std::vector<std::size_t> table_;
  std::uint64_t slot_cycles_;
  RoundRobinArbiter fallback_;
};

}  // namespace stlm::cam
