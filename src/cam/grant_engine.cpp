#include "cam/grant_engine.hpp"

#include <algorithm>

#include "kernel/report.hpp"

namespace stlm::cam {

GrantEngine::GrantEngine(std::unique_ptr<Arbiter> arbiter,
                         std::size_t max_outstanding)
    : arbiter_(std::move(arbiter)),
      max_outstanding_(std::max<std::size_t>(max_outstanding, 1)) {
  STLM_ASSERT(arbiter_ != nullptr, "GrantEngine needs an arbiter");
}

std::size_t GrantEngine::add_master() {
  masters_.emplace_back();
  // Reserve the cap up front so steady-state grant/retire never allocates.
  masters_.back().inflight_ids.reserve(max_outstanding_);
  return masters_.size() - 1;
}

void GrantEngine::enqueue(std::size_t m, Txn& txn) {
  STLM_ASSERT(m < masters_.size(), "GrantEngine: master index out of range");
  masters_[m].pending.push_back(txn);
}

Txn* GrantEngine::grant(std::uint64_t cycle, std::size_t* master_out) {
  eligible_.assign(masters_.size(), false);
  bool any = false;
  for (std::size_t i = 0; i < masters_.size(); ++i) {
    eligible_[i] = !masters_[i].pending.empty() &&
                   masters_[i].inflight_ids.size() < max_outstanding_;
    any = any || eligible_[i];
  }
  if (!any) return nullptr;

  const int picked = arbiter_->pick(eligible_, cycle);
  STLM_ASSERT(picked >= 0, "arbiter returned no grant with eligible masters");
  const auto g = static_cast<std::size_t>(picked);
  STLM_ASSERT(g < masters_.size() && eligible_[g],
              "arbiter granted an ineligible master");
  Txn* txn = masters_[g].pending.pop_front();
  STLM_ASSERT(txn != nullptr, "granted master has empty queue");
  masters_[g].inflight_ids.push_back(txn->id);
  if (master_out) *master_out = g;
  return txn;
}

void GrantEngine::retire(std::size_t m, const Txn& txn) {
  STLM_ASSERT(m < masters_.size(), "GrantEngine: master index out of range");
  auto& ids = masters_[m].inflight_ids;
  const auto it = std::find(ids.begin(), ids.end(), txn.id);
  STLM_ASSERT(it != ids.end(),
              "GrantEngine: retiring a transaction that is not in flight");
  ids.erase(it);
}

std::size_t GrantEngine::owner_of(const Txn& txn) const {
  for (std::size_t m = 0; m < masters_.size(); ++m) {
    const auto& ids = masters_[m].inflight_ids;
    if (std::find(ids.begin(), ids.end(), txn.id) != ids.end()) return m;
  }
  return npos;
}

bool GrantEngine::any_pending() const {
  for (const auto& m : masters_) {
    if (!m.pending.empty()) return true;
  }
  return false;
}

bool GrantEngine::any_inflight() const {
  for (const auto& m : masters_) {
    if (!m.inflight_ids.empty()) return true;
  }
  return false;
}

void GrantEngine::note_fast_grant(std::size_t m, std::uint64_t cycle) {
  STLM_ASSERT(m < masters_.size(), "GrantEngine: master index out of range");
  eligible_.assign(masters_.size(), false);
  eligible_[m] = true;
  arbiter_->pick(eligible_, cycle);
}

}  // namespace stlm::cam
