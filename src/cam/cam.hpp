#pragma once
// Umbrella header for the communication architecture model library.

#include "cam/address_map.hpp"
#include "cam/arbiter.hpp"
#include "cam/bridge.hpp"
#include "cam/buses.hpp"
#include "cam/cam_base.hpp"
#include "cam/cam_if.hpp"
#include "cam/grant_engine.hpp"
#include "cam/retry.hpp"
#include "cam/wrappers.hpp"
