#include "cam/bridge.hpp"

namespace stlm::cam {

BusBridge::BusBridge(Simulator& sim, std::string name, CamIf& downstream,
                     std::uint32_t crossing_cycles)
    : Module(sim, std::move(name)),
      down_(downstream),
      down_master_(downstream.add_master(full_name())),
      crossing_cycles_(crossing_cycles) {}

void BusBridge::handle(Txn& txn) {
  if (crossing_cycles_) wait(down_.cycle() * crossing_cycles_);
  ++forwarded_;
  // The same descriptor crosses the bridge — no request/response copies.
  down_.master_port(down_master_).transport(txn);
}

}  // namespace stlm::cam
