#include "cam/bridge.hpp"

namespace stlm::cam {

BusBridge::BusBridge(Simulator& sim, std::string name, CamIf& downstream,
                     std::uint32_t crossing_cycles)
    : Module(sim, std::move(name)),
      down_(downstream),
      down_master_(downstream.add_master(full_name())),
      crossing_cycles_(crossing_cycles) {}

ocp::Response BusBridge::handle(const ocp::Request& req) {
  if (crossing_cycles_) wait(down_.cycle() * crossing_cycles_);
  ++forwarded_;
  return down_.master_port(down_master_).transport(req);
}

}  // namespace stlm::cam
