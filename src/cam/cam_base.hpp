#pragma once
// Shared implementation of single-resource (bus-style) CAMs.
//
// A single grant engine serializes transactions: masters enqueue pending
// descriptors at their access points; the engine arbitrates, charges the
// protocol's cycle count in one wait() (CCATB), delivers the request to
// the decoded slave, and completes the descriptor. Derived classes only
// describe their protocol timing via txn_cycles().

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cam/arbiter.hpp"
#include "cam/cam_if.hpp"
#include "kernel/module.hpp"

namespace stlm::cam {

class CamBase : public Module, public CamIf {
public:
  CamBase(Simulator& sim, std::string name, Time cycle,
          std::unique_ptr<Arbiter> arbiter);

  // --- CamIf ---------------------------------------------------------
  std::size_t add_master(const std::string& name) override;
  ocp::ocp_tl_master_if& master_port(std::size_t i) override;
  std::size_t master_count() const override { return masters_.size(); }
  void attach_slave(ocp::ocp_tl_slave_if& slave, AddressRange range,
                    const std::string& label) override;
  const std::string& name() const override { return Module::name(); }
  Time cycle() const override { return cycle_; }
  const AddressMap& address_map() const override { return map_; }
  trace::StatSet& stats() override { return stats_; }
  void set_txn_logger(trace::TxnLogger* log) override { log_ = log; }
  double utilization() const override;

  const Arbiter& arbiter() const { return *arbiter_; }

protected:
  // Bus cycles a transaction occupies. `back_to_back` is true when the
  // bus was still busy when this transaction was granted — pipelined
  // protocols (PLB) hide arbitration/address cycles in that case.
  virtual std::uint64_t txn_cycles(const ocp::Request& req,
                                   bool back_to_back) const = 0;

private:
  struct Pending {
    const ocp::Request* req;
    ocp::Response resp;
    Event done;
    bool complete = false;
    Time enqueued;
    explicit Pending(Simulator& sim, const ocp::Request& r)
        : req(&r), done(sim, "cam.pending"), enqueued(sim.now()) {}
  };

  // Access point given to each master.
  struct MasterPort final : ocp::ocp_tl_master_if {
    ocp::Response transport(const ocp::Request& req) override;
    CamBase* cam = nullptr;
    std::size_t index = 0;
    std::string label;
  };

  void engine();
  std::uint64_t now_cycle() const { return sim().now() / cycle_; }

  Time cycle_;
  std::unique_ptr<Arbiter> arbiter_;
  std::vector<std::unique_ptr<MasterPort>> masters_;
  std::vector<std::deque<Pending*>> queues_;
  std::vector<ocp::ocp_tl_slave_if*> slaves_;
  AddressMap map_;
  Event new_request_;
  Time busy_time_ = Time::zero();
  Time last_txn_end_ = Time::zero();
  bool engine_busy_ = false;
  trace::StatSet stats_;
  trace::TxnLogger* log_ = nullptr;
};

}  // namespace stlm::cam
