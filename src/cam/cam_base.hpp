#pragma once
// Shared implementation of single-resource (bus-style) CAMs.
//
// Two engine modes, selected by SplitConfig at construction:
//
//   * atomic (seed behaviour, SplitConfig inactive): one grant engine
//     process serializes transactions — arbitrate, charge the protocol's
//     full cycle count in one wait() (CCATB), deliver the request to the
//     decoded slave, complete the descriptor. Derived classes describe
//     their protocol timing via txn_cycles().
//
//   * split (SplitConfig::active() and the protocol supports it): the
//     address phase is decoupled from the data phase. An address engine
//     arbitrates among masters under their `max_outstanding` cap and
//     charges split_addr_cycles(); granted transactions are serviced by
//     the target concurrently (a worker pool calls handle() off the bus,
//     so slave latency no longer blocks the bus); a data engine charges
//     split_data_cycles() per response in service-completion order —
//     which may differ from address order (out-of-order completion) —
//     and completes the descriptor. Decode errors complete after the
//     address phase plus their data beats without touching a slave.
//
// `max_outstanding == 1` (or split_txns == false) always selects the
// atomic engine, which reproduces the seed's simulated timing
// bit-identically (guarded by tests/test_cam_split.cpp).
//
// Fast path (atomic mode only, opt-in via the `fast_targets` ctor knob):
// when a transaction arrives while the bus is provably idle — no queued
// or in-flight engine work, no fast transaction in progress — and its
// target opted into the fast-target contract (ocp_tl_slave_if::
// fast_capable()), transport()/post() resolve the whole transaction
// from the initiator's context: same arbiter evolution (a single-
// candidate pick), same occupancy math, same stamps/stats/log rows —
// but no grant-engine wakeup and no coroutine switches. The moment
// anything contends, the request falls back to the unchanged engine,
// which also stalls behind any fast transaction still holding the bus
// (`fast_busy_until_`). With the knob off, behaviour is bit-identical
// to the engine-only build. The one documented divergence with the
// knob on: two masters issuing in the same delta at the same timestamp
// are served first-issuer-first, where the engine would have let the
// arbiter rank them one delta later (still deterministic — tested).
//
// Hot-path invariants (guarded by the pooled-Txn stress test):
//   * the per-master pending/service/response queues are intrusive Txn
//     lists — no allocation on enqueue/dequeue;
//   * completion uses Txn's CompletionEvent — no Event construction, no
//     liveness-registry churn;
//   * per-transaction statistics go through cached accumulator/counter
//     slots — no string building per transaction.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cam/grant_engine.hpp"
#include "cam/cam_if.hpp"
#include "kernel/module.hpp"

namespace stlm::cam {

class CamBase : public Module, public CamIf {
public:
  // `width_bytes == 0` selects `default_width_bytes`, the protocol's
  // native data-path width (the Platform grid sweeps explicit widths).
  // `protocol_supports_split` is set by the derived protocol: buses
  // without address pipelining (OPB) ignore the split knobs and always
  // run the atomic engine.
  CamBase(Simulator& sim, std::string name, Time cycle,
          std::unique_ptr<Arbiter> arbiter, std::size_t width_bytes,
          std::size_t default_width_bytes, SplitConfig split,
          bool protocol_supports_split, bool fast_targets = false);

  // --- CamIf ---------------------------------------------------------
  std::size_t add_master(const std::string& name) override;
  ocp::ocp_tl_master_if& master_port(std::size_t i) override;
  std::size_t master_count() const override { return masters_.size(); }
  const std::string& master_label(std::size_t i) const override {
    STLM_ASSERT(i < masters_.size(),
                "master index out of range on " + full_name());
    return masters_[i]->label;
  }
  void attach_slave(ocp::ocp_tl_slave_if& slave, AddressRange range,
                    const std::string& label) override;
  void post(std::size_t master, Txn& txn) override;
  const std::string& name() const override { return Module::name(); }
  Time cycle() const override { return cycle_; }
  const AddressMap& address_map() const override { return map_; }
  trace::StatSet& stats() override { return stats_; }
  void set_txn_logger(trace::TxnLogger* log) override;
  void set_fault_injector(fault::Injector* inj) override { injector_ = inj; }
  double utilization() const override;

  const Arbiter& arbiter() const { return engine_.arbiter(); }
  const GrantEngine& grant_engine() const { return engine_; }
  // True when this instance runs the split (pipelined) engine.
  bool split_active() const { return split_active_; }
  std::size_t max_outstanding() const { return engine_.max_outstanding(); }
  // True when the inline fast path may engage (atomic mode + knob on).
  bool fast_targets() const { return fast_targets_; }
  // Transactions completed via the fast path (0 when disabled).
  std::uint64_t fast_path_hits() const {
    return cnt_fast_hits_ ? *cnt_fast_hits_ : 0;
  }
  // Requests enqueued but not yet granted, summed over masters — an
  // instantaneous queue-depth gauge for obs::MetricsRegistry time series.
  std::size_t queued_requests() const {
    std::size_t n = 0;
    for (std::size_t m = 0; m < engine_.master_count(); ++m) {
      n += engine_.pending_count(m);
    }
    return n;
  }

protected:
  // Bus cycles a transaction occupies in atomic mode. `back_to_back` is
  // true when the bus was still busy when this transaction was granted —
  // pipelined protocols (PLB) hide arbitration/address cycles then.
  virtual std::uint64_t txn_cycles(const Txn& txn, bool back_to_back) const = 0;

  // Split-mode protocol timing: cycles the request occupies the address
  // channel, and cycles the response occupies the data channel. Only
  // called when the derived class passed protocol_supports_split = true.
  virtual std::uint64_t split_addr_cycles(const Txn& txn) const;
  virtual std::uint64_t split_data_cycles(const Txn& txn) const;

  // Data-path width for the derived protocol's beat math.
  std::size_t width_bytes() const { return width_; }

private:
  // Access point given to each master.
  struct MasterPort final : ocp::ocp_tl_master_if {
    using ocp::ocp_tl_master_if::transport;
    void transport(Txn& txn) override;
    CamBase* cam = nullptr;
    std::size_t index = 0;
    std::string label;
    trace::Accumulator* latency = nullptr;  // cached per-master stat slot
    trace::LogHandle log;  // per-master channel: "<bus>.<master>"
  };

  void atomic_engine();
  void addr_engine();
  void service_worker();
  void data_engine();
  void complete_txn(Txn& txn, std::size_t master, std::uint64_t cycles);
  std::uint64_t now_cycle() const { return sim().now() / cycle_; }

  // Fast path (see the class comment). try_fast_* return false without
  // side effects when the transaction must take the engine.
  bool fast_eligible(const Txn& txn, std::size_t* slave_out) const;
  bool try_fast_transport(std::size_t master, Txn& txn);
  bool try_fast_post(std::size_t master, Txn& txn);
  void fast_post_step();  // timed method: occupancy end / service end

  Time cycle_;
  std::size_t width_;
  bool split_active_;
  GrantEngine engine_;
  std::vector<std::unique_ptr<MasterPort>> masters_;
  std::vector<ocp::ocp_tl_slave_if*> slaves_;
  AddressMap map_;
  Event new_request_;
  // Split-mode plumbing: address engine -> service workers -> data engine.
  TxnQueue service_q_;
  TxnQueue resp_q_;
  Event service_avail_;
  Event resp_avail_;
  Time busy_time_ = Time::zero();
  Time last_txn_end_ = Time::zero();
  bool engine_busy_ = false;
  // Seeded fault source (nullptr = fault-free). Consulted by the engines
  // at grant (stalls) and at target delivery (errors/spikes); its
  // presence also vetoes the fast path (fast_eligible), whose merged
  // completions assume a constant service latency.
  fault::Injector* injector_ = nullptr;
  trace::StatSet stats_;
  trace::LogHandle log_;
  trace::TxnLogger* logger_ = nullptr;  // for binding late-added masters

  // Fast-path state. slave_fast_ caches fast_capable() per attached
  // slave; fast_busy_until_ is the instant the bus frees again after a
  // fast transaction (the engine's gate); fast_inflight_ marks a fast
  // *transport* for its whole span — the strict time check alone would
  // let a competitor waking at exactly fast_busy_until_, before the
  // initiator's coroutine resumes, treat the bus as idle; the
  // fast_pending_* slot holds the single posted fast transaction between
  // its issue and the timed fast_complete_ callback that finishes it.
  bool fast_targets_ = false;
  std::vector<bool> slave_fast_;
  Time fast_busy_until_ = Time::zero();
  bool fast_inflight_ = false;
  Txn* fast_pending_ = nullptr;
  std::size_t fast_pending_master_ = 0;
  std::size_t fast_pending_slave_ = 0;
  std::uint64_t fast_pending_cycles_ = 0;
  Time fast_pending_busy_ = Time::zero();  // occupancy to charge at firing
  bool fast_in_service_ = false;  // stage 2: target latency elapsing
  Event fast_complete_;
  std::uint64_t* cnt_fast_hits_ = nullptr;

  // Cached hot statistic slots (stable addresses inside stats_).
  trace::Accumulator* acc_grant_wait_;
  trace::Accumulator* acc_txn_cycles_;
  trace::Accumulator* acc_latency_;
  trace::Accumulator* acc_service_;  // grant -> completion span
  std::uint64_t* cnt_transactions_;
  std::uint64_t* cnt_reads_;
  std::uint64_t* cnt_writes_;
  std::uint64_t* cnt_bytes_;
  std::uint64_t* cnt_decode_errors_;
};

}  // namespace stlm::cam
