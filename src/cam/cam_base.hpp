#pragma once
// Shared implementation of single-resource (bus-style) CAMs.
//
// A single grant engine serializes transactions: masters enqueue pooled
// transaction descriptors at their access points; the engine arbitrates,
// charges the protocol's cycle count in one wait() (CCATB), delivers the
// request to the decoded slave, and completes the descriptor. Derived
// classes only describe their protocol timing via txn_cycles().
//
// Hot-path invariants (guarded by the pooled-Txn stress test):
//   * the per-master pending queues are intrusive Txn lists — no
//     allocation on enqueue/dequeue;
//   * completion uses Txn's CompletionEvent — no Event construction, no
//     liveness-registry churn;
//   * per-transaction statistics go through cached accumulator/counter
//     slots — no string building per transaction.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cam/arbiter.hpp"
#include "cam/cam_if.hpp"
#include "kernel/module.hpp"

namespace stlm::cam {

class CamBase : public Module, public CamIf {
public:
  // `width_bytes == 0` selects `default_width_bytes`, the protocol's
  // native data-path width (the Platform grid sweeps explicit widths).
  CamBase(Simulator& sim, std::string name, Time cycle,
          std::unique_ptr<Arbiter> arbiter, std::size_t width_bytes,
          std::size_t default_width_bytes);

  // --- CamIf ---------------------------------------------------------
  std::size_t add_master(const std::string& name) override;
  ocp::ocp_tl_master_if& master_port(std::size_t i) override;
  std::size_t master_count() const override { return masters_.size(); }
  void attach_slave(ocp::ocp_tl_slave_if& slave, AddressRange range,
                    const std::string& label) override;
  const std::string& name() const override { return Module::name(); }
  Time cycle() const override { return cycle_; }
  const AddressMap& address_map() const override { return map_; }
  trace::StatSet& stats() override { return stats_; }
  void set_txn_logger(trace::TxnLogger* log) override;
  double utilization() const override;

  const Arbiter& arbiter() const { return *arbiter_; }

protected:
  // Bus cycles a transaction occupies. `back_to_back` is true when the
  // bus was still busy when this transaction was granted — pipelined
  // protocols (PLB) hide arbitration/address cycles in that case.
  virtual std::uint64_t txn_cycles(const Txn& txn, bool back_to_back) const = 0;

  // Data-path width for the derived protocol's beat math.
  std::size_t width_bytes() const { return width_; }

private:
  // Access point given to each master.
  struct MasterPort final : ocp::ocp_tl_master_if {
    using ocp::ocp_tl_master_if::transport;
    void transport(Txn& txn) override;
    CamBase* cam = nullptr;
    std::size_t index = 0;
    std::string label;
    trace::Accumulator* latency = nullptr;  // cached per-master stat slot
  };

  void engine();
  std::uint64_t now_cycle() const { return sim().now() / cycle_; }

  Time cycle_;
  std::size_t width_;
  std::unique_ptr<Arbiter> arbiter_;
  std::vector<std::unique_ptr<MasterPort>> masters_;
  std::vector<TxnQueue> queues_;  // intrusive pending lists, one per master
  std::vector<ocp::ocp_tl_slave_if*> slaves_;
  AddressMap map_;
  Event new_request_;
  Time busy_time_ = Time::zero();
  Time last_txn_end_ = Time::zero();
  bool engine_busy_ = false;
  trace::StatSet stats_;
  trace::LogHandle log_;

  // Cached hot statistic slots (stable addresses inside stats_).
  trace::Accumulator* acc_grant_wait_;
  trace::Accumulator* acc_txn_cycles_;
  trace::Accumulator* acc_latency_;
  std::uint64_t* cnt_transactions_;
  std::uint64_t* cnt_reads_;
  std::uint64_t* cnt_writes_;
  std::uint64_t* cnt_bytes_;
  std::uint64_t* cnt_decode_errors_;
};

}  // namespace stlm::cam
