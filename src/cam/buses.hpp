#pragma once
// Concrete CCATB bus models.
//
// The paper's flow assumes "a library of CAMs (e.g. of the CoreConnect
// architecture)". We provide:
//   * SharedBusCam — generic 32-bit single-stage shared bus (baseline);
//   * PlbCam       — CoreConnect PLB-like: 64-bit, pipelined arbitration
//                    and address phases (hidden when back-to-back);
//   * OpbCam       — CoreConnect OPB-like: 32-bit peripheral bus, two
//                    cycles per data beat, no pipelining;
//   * CrossbarCam  — per-slave parallel lanes (contention only per target).
//
// Cycle counts are parameterized; defaults follow CoreConnect-class
// documentation (PLB @100 MHz, OPB @50 MHz in the examples).
//
// SharedBusCam and PlbCam support the split engine (SplitConfig): the
// address phase (arbitration + address cycles) pipelines against the
// data phase of earlier transactions, target service runs off the bus,
// and each master may keep `max_outstanding` transactions in flight.
// OpbCam has no address pipelining, so it ignores the split knobs.
// CrossbarCam's split mode queues per lane and completes out of order
// across lanes (per-port OoO).

#include <memory>

#include "cam/cam_base.hpp"
#include "kernel/channels.hpp"

namespace stlm::cam {

// Data beats a payload occupies on a bus of `width_bytes` (min one beat —
// even zero-payload control transactions own the data phase for a cycle).
inline std::uint64_t beats_for(std::size_t payload_bytes,
                               std::size_t width_bytes) {
  if (payload_bytes == 0) return 1;
  return (payload_bytes + width_bytes - 1) / width_bytes;
}

class SharedBusCam final : public CamBase {
public:
  static constexpr std::size_t kDefaultWidthBytes = 4;

  SharedBusCam(Simulator& sim, std::string name, Time cycle,
               std::unique_ptr<Arbiter> arbiter, std::size_t width_bytes = 0,
               SplitConfig split = {}, bool fast_targets = false)
      : CamBase(sim, std::move(name), cycle, std::move(arbiter), width_bytes,
                kDefaultWidthBytes, split, /*protocol_supports_split=*/true,
                fast_targets) {}

protected:
  std::uint64_t txn_cycles(const Txn& txn, bool) const override {
    // arbitration + address + one cycle per data beat + response.
    return 2 + beats_for(txn.payload_bytes(), width_bytes()) + 1;
  }
  std::uint64_t split_addr_cycles(const Txn&) const override {
    return 2;  // arbitration + address
  }
  std::uint64_t split_data_cycles(const Txn& txn) const override {
    return beats_for(txn.payload_bytes(), width_bytes()) + 1;  // + response
  }
};

class PlbCam final : public CamBase {
public:
  static constexpr std::size_t kDefaultWidthBytes = 8;

  PlbCam(Simulator& sim, std::string name, Time cycle,
         std::unique_ptr<Arbiter> arbiter, std::size_t width_bytes = 0,
         SplitConfig split = {}, bool fast_targets = false)
      : CamBase(sim, std::move(name), cycle, std::move(arbiter), width_bytes,
                kDefaultWidthBytes, split, /*protocol_supports_split=*/true,
                fast_targets) {}

protected:
  std::uint64_t txn_cycles(const Txn& txn,
                           bool back_to_back) const override {
    const std::uint64_t beats = beats_for(txn.payload_bytes(), width_bytes());
    // Pipelined: request/address overlap the previous data phase.
    const std::uint64_t setup = back_to_back ? 0 : 2;
    return setup + beats;
  }
  std::uint64_t split_addr_cycles(const Txn&) const override {
    return 2;  // request + address, always off the data path in split mode
  }
  std::uint64_t split_data_cycles(const Txn& txn) const override {
    return beats_for(txn.payload_bytes(), width_bytes());
  }
};

class OpbCam final : public CamBase {
public:
  static constexpr std::size_t kDefaultWidthBytes = 4;

  OpbCam(Simulator& sim, std::string name, Time cycle,
         std::unique_ptr<Arbiter> arbiter, std::size_t width_bytes = 0,
         SplitConfig split = {}, bool fast_targets = false)
      : CamBase(sim, std::move(name), cycle, std::move(arbiter), width_bytes,
                kDefaultWidthBytes, split, /*protocol_supports_split=*/false,
                fast_targets) {}

protected:
  std::uint64_t txn_cycles(const Txn& txn, bool) const override {
    // Single master/slave handshake per word: 2 cycles per beat.
    return 2 + 2ull * beats_for(txn.payload_bytes(), width_bytes());
  }
};

// Parallel crossbar: one lane (and one arbiter-free FIFO queue) per
// slave. Transactions to different targets proceed concurrently. In
// split mode each lane is served by its own engine process and a master
// may post() up to `max_outstanding` transactions across lanes; their
// completions arrive in lane-service order, not issue order (per-port
// out-of-order completion).
class CrossbarCam final : public Module, public CamIf {
public:
  static constexpr std::size_t kDefaultWidthBytes = 8;

  // `fast_targets` opts lanes into the fast-target contract: when the
  // routed slave is fast_capable(), the lane resolves the service latency
  // inline via fast_handle() instead of a blocking handle() call. Lane
  // occupancy and queuing are unchanged (the crossbar already runs each
  // transaction on the initiator's or a lane engine's coroutine), so
  // timing is identical either way — the win is skipping the slave's
  // internal wait() bookkeeping for zero-latency FSM targets.
  CrossbarCam(Simulator& sim, std::string name, Time cycle,
              std::size_t width_bytes = kDefaultWidthBytes,
              SplitConfig split = {}, bool fast_targets = false);

  std::size_t add_master(const std::string& name) override;
  ocp::ocp_tl_master_if& master_port(std::size_t i) override;
  std::size_t master_count() const override { return masters_.size(); }
  const std::string& master_label(std::size_t i) const override {
    STLM_ASSERT(i < masters_.size(),
                "master index out of range on " + full_name());
    return masters_[i]->label;
  }
  void attach_slave(ocp::ocp_tl_slave_if& slave, AddressRange range,
                    const std::string& label) override;
  void post(std::size_t master, Txn& txn) override;
  const std::string& name() const override { return Module::name(); }
  Time cycle() const override { return cycle_; }
  const AddressMap& address_map() const override { return map_; }
  // Folds the per-lane stat shards (lane-index order, scheduler-free)
  // into the public set before returning it — see LaneStats below.
  trace::StatSet& stats() override;
  void set_txn_logger(trace::TxnLogger* log) override;
  void set_fault_injector(fault::Injector* inj) override { injector_ = inj; }
  double utilization() const override;

  bool split_active() const { return split_.active(); }
  // Clamped like CamBase: an inactive split config models depth 1.
  std::size_t max_outstanding() const {
    return split_.active() ? split_.max_outstanding : 1;
  }

private:
  struct MasterPort final : ocp::ocp_tl_master_if {
    using ocp::ocp_tl_master_if::transport;
    void transport(Txn& txn) override;
    CrossbarCam* xbar = nullptr;
    std::size_t index = 0;
    std::string label;
    trace::LogHandle log;  // per-master channel: "<bus>.<master>"
  };

  // Per-lane statistics shard. Crossbar completions run concurrently on
  // per-lane coroutines (initiators holding the lane mutex in atomic
  // mode, one lane engine in split mode), so a single shared StatSet
  // would make its floating-point sums depend on dispatch order — the
  // exact hazard the determinism auditor flags. Each lane accumulates
  // into its own shard (updates within a lane are totally ordered:
  // mutex-serialized at distinct instants, or a single engine process);
  // stats() folds the shards in lane-index order, so the published sums
  // are invariant under any legal scheduler interleaving.
  struct LaneStats {
    std::uint64_t transactions = 0;
    std::uint64_t bytes = 0;
    trace::Accumulator latency;
    trace::Accumulator service;
    std::vector<trace::Accumulator> per_master;  // grown on demand
  };

  void route(std::size_t master, Txn& txn);
  void lane_engine(std::size_t lane);
  void finish(std::size_t master, std::size_t lane, Txn& txn, Time start);

  // Deliver `txn` to slave `s`, charging lane occupancy `occ` and then
  // the target's service latency (fast path when the slave opted in).
  void serve(std::size_t s, Txn& txn, Time occ);

  Time cycle_;
  std::size_t width_;
  SplitConfig split_;
  bool fast_targets_;
  std::vector<std::unique_ptr<MasterPort>> masters_;
  std::vector<ocp::ocp_tl_slave_if*> slaves_;
  std::vector<bool> slave_fast_;
  std::vector<std::unique_ptr<Mutex>> lanes_;
  std::vector<std::unique_ptr<LaneStats>> lane_stats_;  // one per lane
  // Split mode: per-lane intrusive queues + wake events, per-master
  // in-flight counts bounded by max_outstanding.
  std::vector<std::unique_ptr<TxnQueue>> lane_q_;
  std::vector<std::unique_ptr<Event>> lane_avail_;
  std::vector<std::size_t> inflight_;
  Event slot_free_;
  // Seeded fault source (nullptr = fault-free), consulted per lane
  // delivery in serve(). Lanes are arbiter-free FIFOs, so the crossbar
  // has no grant stream to stall — only errors and latency spikes apply.
  fault::Injector* injector_ = nullptr;
  AddressMap map_;
  Time busy_time_ = Time::zero();
  trace::StatSet stats_;
  trace::LogHandle log_;
  trace::TxnLogger* logger_ = nullptr;  // for binding late-added masters
};

}  // namespace stlm::cam
