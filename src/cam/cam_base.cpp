#include "cam/cam_base.hpp"

#include "fault/fault.hpp"
#include "obs/trace_session.hpp"

namespace stlm::cam {

namespace {

// Fault delivery shared by the engines: draw the injector's verdict for
// one decoded access. Returns true when an error was injected (the
// caller skips handle()); a latency spike is charged as extra bus cycles
// before the verdict applies, from the calling engine's coroutine.
bool inject_access_fault(fault::Injector* inj, std::size_t slave, Txn& txn,
                         Time cycle, Simulator& sim,
                         const std::string& channel) {
  if (inj == nullptr) return false;
  const auto f = inj->on_access(slave);
  if (f.spike_cycles != 0) wait(cycle * f.spike_cycles);
  if (!f.error) return false;
  txn.respond_error();
#ifdef STLM_OBS
  if (obs::TraceSession* ts = sim.trace_session(); ts != nullptr) {
    ts->instant(channel, "fault", sim.now());
  }
#else
  (void)sim;
  (void)channel;
#endif
  return true;
}

}  // namespace

CamBase::CamBase(Simulator& sim, std::string name, Time cycle,
                 std::unique_ptr<Arbiter> arbiter, std::size_t width_bytes,
                 std::size_t default_width_bytes, SplitConfig split,
                 bool protocol_supports_split, bool fast_targets)
    : Module(sim, std::move(name)),
      cycle_(cycle),
      width_(width_bytes ? width_bytes : default_width_bytes),
      split_active_(split.active() && protocol_supports_split),
      engine_(std::move(arbiter), split_active_ ? split.max_outstanding : 1),
      new_request_(sim, full_name() + ".new_request"),
      service_avail_(sim, full_name() + ".service_avail"),
      resp_avail_(sim, full_name() + ".resp_avail"),
      fast_targets_(fast_targets && !split_active_),
      fast_complete_(sim, full_name() + ".fast_complete") {
  STLM_ASSERT(!cycle_.is_zero(), "CAM cycle must be positive: " + full_name());
  acc_grant_wait_ = &stats_.acc("grant_wait_ns");
  acc_txn_cycles_ = &stats_.acc("txn_cycles");
  acc_latency_ = &stats_.acc("latency_ns");
  acc_service_ = &stats_.acc("service_ns");
  cnt_transactions_ = &stats_.counter_slot("transactions");
  cnt_reads_ = &stats_.counter_slot("reads");
  cnt_writes_ = &stats_.counter_slot("writes");
  cnt_bytes_ = &stats_.counter_slot("bytes");
  cnt_decode_errors_ = &stats_.counter_slot("decode_errors");
  if (fast_targets_) {
    // Only materialize the stat slot when the knob is on, so the stats
    // table of a fast-off platform is unchanged.
    cnt_fast_hits_ = &stats_.counter_slot("fast_path_hits");
    spawn_method("fast_step", [this] { fast_post_step(); }, {&fast_complete_},
                 /*run_at_start=*/false);
  }
  if (split_active_) {
    spawn_thread("addr_engine", [this] { addr_engine(); });
    spawn_thread("data_engine", [this] { data_engine(); });
  } else {
    spawn_thread("engine", [this] { atomic_engine(); });
  }
}

std::uint64_t CamBase::split_addr_cycles(const Txn&) const {
  throw SimulationError("CAM " + full_name() +
                        " enabled split mode without split timing");
}

std::uint64_t CamBase::split_data_cycles(const Txn&) const {
  throw SimulationError("CAM " + full_name() +
                        " enabled split mode without split timing");
}

std::size_t CamBase::add_master(const std::string& name) {
  auto mp = std::make_unique<MasterPort>();
  mp->cam = this;
  mp->index = masters_.size();
  mp->label = name;
  mp->latency = &stats_.acc("master_" + name + "_latency_ns");
  // Per-master latency channel "<bus>.<master>" (logger may be set
  // before or after masters are added; set_txn_logger rebinds).
  if (logger_) mp->log.bind(logger_, full_name() + "." + name);
  masters_.push_back(std::move(mp));
  const std::size_t idx = engine_.add_master();
  if (split_active_) {
    // One service worker per in-flight slot: every granted transaction
    // can be in target service concurrently, so a slow slave never
    // stalls the address or data pipelines of unrelated transactions.
    for (std::size_t w = 0; w < engine_.max_outstanding(); ++w) {
      spawn_thread("svc_" + name + "_" + std::to_string(w),
                   [this] { service_worker(); });
    }
  }
  return idx;
}

ocp::ocp_tl_master_if& CamBase::master_port(std::size_t i) {
  STLM_ASSERT(i < masters_.size(), "master index out of range on " + full_name());
  return *masters_[i];
}

void CamBase::attach_slave(ocp::ocp_tl_slave_if& slave, AddressRange range,
                           const std::string& label) {
  map_.add(range, label);
  slaves_.push_back(&slave);
  // Capability is a static property of the target type; cache it so the
  // fast-path eligibility check is a vector<bool> lookup.
  slave_fast_.push_back(slave.fast_capable());
}

void CamBase::set_txn_logger(trace::TxnLogger* log) {
  logger_ = log;
  log_.bind(log, full_name());
  for (auto& mp : masters_) {
    mp->log.bind(log, full_name() + "." + mp->label);
  }
}

double CamBase::utilization() const {
  // Guard: before any simulated time has elapsed there is nothing to
  // normalize by — report an idle bus instead of dividing by zero.
  // In split mode busy_time_ counts data-channel occupancy (the shared
  // resource the pipeline is bound by); hidden address phases are free.
  const Time elapsed = sim().now();
  if (elapsed.is_zero()) return 0.0;
  return busy_time_.to_seconds() / elapsed.to_seconds();
}

void CamBase::post(std::size_t master, Txn& txn) {
  STLM_ASSERT(master < masters_.size(),
              "master index out of range on " + full_name());
  // Audited per access point: the arbiter ranks same-delta requests from
  // *different* masters deterministically, but two processes issuing
  // through one master port race for its pending queue's order.
  audit::on_access(sim(), masters_[master].get(), audit::Mode::Write,
                   "cam.master", masters_[master]->label);
  if (try_fast_post(master, txn)) return;
#ifdef STLM_OBS
  // A fast-capable bus fell back to the full engine path (contention,
  // split mode, non-fast target): mark the spot on the timeline so
  // fast-hit-rate regressions can be localized in simulated time.
  if (fast_targets_) {
    if (obs::TraceSession* ts = sim().trace_session(); ts != nullptr) {
      ts->instant(full_name(), "fast_fallback", sim().now());
    }
  }
#endif
  txn.enqueued = sim().now();
  txn.reset_phases();  // re-queued descriptors must not carry stale stamps
  txn.status = Txn::Status::Pending;
  engine_.enqueue(master, txn);
  new_request_.notify_delta();
}

void CamBase::MasterPort::transport(Txn& txn) {
  CamBase& c = *cam;
  audit::on_access(c.sim(), this, audit::Mode::Write, "cam.master", label);
  // A bridge may forward the same descriptor into this CAM while the
  // original initiator still waits on it: shelve the outer waiter (and
  // the outer CAM's enqueue/phase timestamps) for the inner round-trip.
  Txn::PhaseShelf shelf(txn);
  CompletionEvent::NestedScope nest(txn.done);
  if (c.try_fast_transport(index, txn)) return;
#ifdef STLM_OBS
  if (c.fast_targets_) {
    if (obs::TraceSession* ts = c.sim().trace_session(); ts != nullptr) {
      ts->instant(c.full_name(), "fast_fallback", c.sim().now());
    }
  }
#endif
  txn.enqueued = c.sim().now();
  txn.reset_phases();
  txn.status = Txn::Status::Pending;
  c.engine_.enqueue(index, txn);
  c.new_request_.notify_delta();
  txn.done.wait(c.sim());
}

// ---------------------------------------------------------- fast path ----
//
// Inline completion for provably uncontended accesses to fast-capable
// targets (see the class comment in cam_base.hpp). Everything observable
// — stamps, stats, log rows, arbiter state, busy accounting, timing —
// matches what the atomic engine would have produced for the same
// isolated transaction; the only thing missing is the engine wakeup and
// its coroutine switches.

bool CamBase::fast_eligible(const Txn& txn, std::size_t* slave_out) const {
  if (!fast_targets_) return false;
  // Fault injection voids the fast path wholesale: injected spikes break
  // the constant-latency contract merged completions rely on, and the
  // injector draw itself must happen at the engine's delivery point to
  // keep the per-slave streams in simulation order.
  if (injector_ != nullptr) return false;
  if (fast_pending_) return false;                 // a fast post is in flight
  if (fast_inflight_) return false;                // a fast transport is
  if (sim().now() < fast_busy_until_) return false;  // bus still occupied
  // Any queued or granted engine work means arbitration order matters —
  // take the engine. (Between an engine grant and its retire the txn is
  // in flight, which also covers the engine's occupancy wait.)
  if (engine_.any_pending() || engine_.any_inflight()) return false;
  const std::size_t bytes = txn.payload_bytes();
  const auto slave = map_.decode(txn.addr, bytes ? bytes : 1);
  // Decode errors keep their engine-side timing/stats path.
  if (!slave || !slave_fast_[*slave]) return false;
  *slave_out = *slave;
  return true;
}

bool CamBase::try_fast_transport(std::size_t master, Txn& txn) {
  std::size_t s = 0;
  if (!fast_eligible(txn, &s)) return false;
  txn.enqueued = sim().now();
  txn.reset_phases();
  txn.status = Txn::Status::Pending;
  // Mirror the engine's grant: stamps, zero grant wait (the engine would
  // grant in the next delta at the same instant), arbiter evolution.
  const bool back_to_back = engine_busy_ && last_txn_end_ == sim().now();
  const std::uint64_t cycles = txn_cycles(txn, back_to_back);
  const Time occupancy = cycle_ * cycles;
  txn.t_grant = sim().now();
  txn.t_data = txn.t_grant;
  acc_grant_wait_->add(0.0);
  engine_.note_fast_grant(master, now_cycle());
  // Hold the bus: competing requests issued during the occupancy fall
  // back to the engine, whose gate stalls until fast_busy_until_.
  // fast_inflight_ closes the strict time check's boundary hole: a
  // competitor (or the engine) whose timed wake lands at exactly
  // fast_busy_until_ and runs before this process resumes must still
  // see the bus as taken.
  fast_inflight_ = true;
  const auto fixed = slaves_[s]->fast_fixed_latency();
  if (fixed) {
    // Constant-latency target: the access resolves at grant time and a
    // single merged wait covers occupancy + service (see the
    // fast_fixed_latency() contract for why the reordering is legal).
    // The retire instant is known now — stamp it up front so a
    // completion-instant reader can never observe a stale value.
    fast_busy_until_ = sim().now() + occupancy + *fixed;
    last_txn_end_ = fast_busy_until_;
    engine_busy_ = true;
    const Time latency = slaves_[s]->fast_handle(txn);
    wait(occupancy + latency);
    busy_time_ += occupancy;
  } else {
    fast_busy_until_ = sim().now() + occupancy;
    wait(occupancy);
    busy_time_ += occupancy;
    const Time latency = slaves_[s]->fast_handle(txn);
    if (!latency.is_zero()) {
      // Target service time: the engine path would sit in handle() here.
      fast_busy_until_ = sim().now() + latency;
      wait(latency);
    }
    last_txn_end_ = sim().now();
    engine_busy_ = true;
  }
  fast_inflight_ = false;
  ++*cnt_fast_hits_;
  complete_txn(txn, master, cycles);
  // Competitors that fell back while we held the bus are grantable now;
  // the engine may be parked in its gate waiting for exactly this.
  if (engine_.any_pending()) new_request_.notify_delta();
  return true;
}

bool CamBase::try_fast_post(std::size_t master, Txn& txn) {
  std::size_t s = 0;
  if (!fast_eligible(txn, &s)) return false;
  txn.enqueued = sim().now();
  txn.reset_phases();
  txn.status = Txn::Status::Pending;
  const bool back_to_back = engine_busy_ && last_txn_end_ == sim().now();
  const std::uint64_t cycles = txn_cycles(txn, back_to_back);
  const Time occupancy = cycle_ * cycles;
  txn.t_grant = txn.enqueued;
  txn.t_data = txn.t_grant;
  acc_grant_wait_->add(0.0);
  engine_.note_fast_grant(master, now_cycle());
  // post() must not block: park the transaction in the single fast slot
  // and let the timed fast_step method pick it up at occupancy end.
  // Methods run before threads within a timestamp, so the slot (and the
  // bus) free up before any process scheduled at that instant can issue.
  fast_pending_ = &txn;
  fast_pending_master_ = master;
  fast_pending_slave_ = s;
  fast_pending_cycles_ = cycles;
  // Bus occupancy is accounted by fast_post_step's next firing — the
  // engine's accounting instant (after its occupancy wait) — not here at
  // grant, so a run_for() cutoff mid-transaction samples the same
  // utilization either way.
  fast_pending_busy_ = occupancy;
  const auto fixed = slaves_[s]->fast_fixed_latency();
  if (fixed) {
    // Constant-latency target: service the access now and schedule one
    // merged completion — fast_post_step fires once, straight into its
    // completion stage. The retire instant is known now; stamp it so a
    // completion-instant reader can never observe a stale value.
    const Time latency = slaves_[s]->fast_handle(txn);
    fast_in_service_ = true;
    fast_busy_until_ = sim().now() + occupancy + latency;
    last_txn_end_ = fast_busy_until_;
    engine_busy_ = true;
    fast_complete_.notify(occupancy + latency);
  } else {
    fast_in_service_ = false;
    fast_busy_until_ = sim().now() + occupancy;
    fast_complete_.notify(occupancy);
  }
  return true;
}

void CamBase::fast_post_step() {
  if (!fast_pending_) return;
  Txn& txn = *fast_pending_;
  // Deferred occupancy accounting: charged exactly once, at the first
  // firing after the occupancy elapsed (for merged fixed-latency posts
  // that is the single completion firing).
  busy_time_ += fast_pending_busy_;
  fast_pending_busy_ = Time::zero();
  if (!fast_in_service_) {
    // Occupancy elapsed — the effective access instant, exactly when the
    // engine path would have called handle().
    const Time latency = slaves_[fast_pending_slave_]->fast_handle(txn);
    if (!latency.is_zero()) {
      fast_in_service_ = true;
      fast_busy_until_ = sim().now() + latency;
      fast_complete_.notify(latency);
      return;
    }
  }
  last_txn_end_ = sim().now();
  engine_busy_ = true;
  ++*cnt_fast_hits_;
  fast_pending_ = nullptr;
  complete_txn(txn, fast_pending_master_, fast_pending_cycles_);
  // Requests that fell back to the engine mid-flight are grantable now.
  // Only wake the engine when there is actually work: a spurious wake
  // would clear engine_busy_ and lose the back-to-back timing the next
  // grant is entitled to.
  if (engine_.any_pending()) new_request_.notify_delta();
}

// ------------------------------------------------------ atomic engine ----
//
// The seed behaviour: one process owns the whole transaction — its timing
// must never change (bit-identical guard in tests/test_cam_split.cpp).

void CamBase::atomic_engine() {
  for (;;) {
    // Fast-path gate: a fast transaction holds the bus until
    // fast_busy_until_; stall behind it (re-checked, because a fast
    // post's service stage may extend it). Never taken with the fast
    // knob off — fast_busy_until_ and fast_inflight_ stay clear. At the
    // exact occupancy-end instant a fast *transport* may not have
    // resumed yet (fast posts are finished by the method, which runs
    // before threads); its completion notifies new_request_ when work is
    // pending, so parking on the event cannot strand a grantable txn.
    if (fast_inflight_ || sim().now() < fast_busy_until_) {
      if (sim().now() < fast_busy_until_) {
        wait(fast_busy_until_ - sim().now());
      } else {
        wait(new_request_);
      }
      continue;
    }
    std::size_t g = 0;
    Txn* txn = engine_.grant(now_cycle(), &g);
    if (!txn) {
      engine_busy_ = false;
      wait(new_request_);
      continue;
    }

    // Grant-stall burst: the arbiter withholds the granted request for a
    // few cycles. Charged before the grant stamp, so the stall reads as
    // queueing delay (arbitration wait), not bus service.
    if (injector_ != nullptr) {
      if (const std::uint64_t stall = injector_->on_grant()) {
        wait(cycle_ * stall);
      }
    }

    const bool back_to_back = engine_busy_ && last_txn_end_ == sim().now();
    const std::uint64_t cycles = txn_cycles(*txn, back_to_back);
    const Time occupancy = cycle_ * cycles;

    // The atomic engine charges arbitration+address+data+response as one
    // occupancy wait, so address and data phases are indistinguishable:
    // both stamps carry the grant instant.
    txn->t_grant = sim().now();
    txn->t_data = txn->t_grant;
    acc_grant_wait_->add((sim().now() - txn->enqueued).to_ns());
    wait(occupancy);
    busy_time_ += occupancy;

    const std::size_t bytes = txn->payload_bytes();
    const auto slave = map_.decode(txn->addr, bytes ? bytes : 1);
    if (!slave) {
      txn->respond_error();
      ++*cnt_decode_errors_;
    } else if (!inject_access_fault(injector_, *slave, *txn, cycle_, sim(),
                                    full_name())) {
      slaves_[*slave]->handle(*txn);
    }

    last_txn_end_ = sim().now();
    engine_busy_ = true;

    engine_.retire(g, *txn);
    complete_txn(*txn, g, cycles);

    // Yield one delta so just-completed masters can re-enqueue before the
    // next arbitration — otherwise a saturating high-priority master
    // could never actually exercise its priority.
    new_request_.notify_delta();
    wait(new_request_);
  }
}

// ------------------------------------------------------- split engine ----

void CamBase::addr_engine() {
  for (;;) {
    std::size_t g = 0;
    Txn* txn = engine_.grant(now_cycle(), &g);
    if (!txn) {
      // Idle, or every requesting master is at its outstanding cap; a
      // new request or a retiring data phase re-arms the loop.
      wait(new_request_);
      continue;
    }

    // Grant-stall burst (see atomic_engine): delays the grant stamp, so
    // the stall is accounted as arbitration wait.
    if (injector_ != nullptr) {
      if (const std::uint64_t stall = injector_->on_grant()) {
        wait(cycle_ * stall);
      }
    }

    txn->t_grant = sim().now();
    acc_grant_wait_->add((sim().now() - txn->enqueued).to_ns());
    const std::uint64_t ac = split_addr_cycles(*txn);
    if (ac) wait(cycle_ * ac);

    // Address decode happens in the address phase. Errors skip target
    // service and go straight to the data engine for completion.
    const std::size_t bytes = txn->payload_bytes();
    const auto slave = map_.decode(txn->addr, bytes ? bytes : 1);
    if (!slave) {
      txn->respond_error();
      ++*cnt_decode_errors_;
      resp_q_.push_back(*txn);
      resp_avail_.notify_delta();
      continue;
    }
    service_q_.push_back(*txn);
    service_avail_.notify_delta();
  }
}

void CamBase::service_worker() {
  for (;;) {
    while (service_q_.empty()) wait(service_avail_);
    Txn* txn = service_q_.pop_front();
    // Re-derive the decode from the address phase (cheap, and it keeps
    // the descriptor free of CAM-internal routing state).
    const std::size_t bytes = txn->payload_bytes();
    const auto slave = map_.decode(txn->addr, bytes ? bytes : 1);
    STLM_ASSERT(slave.has_value(), "split service lost its decode");
    if (!inject_access_fault(injector_, *slave, *txn, cycle_, sim(),
                             full_name())) {
      slaves_[*slave]->handle(*txn);
    }
    resp_q_.push_back(*txn);
    resp_avail_.notify_delta();
  }
}

void CamBase::data_engine() {
  for (;;) {
    while (resp_q_.empty()) wait(resp_avail_);
    Txn* txn = resp_q_.pop_front();
    txn->t_data = sim().now();  // response won the data channel
    const std::uint64_t dc = split_data_cycles(*txn);
    const Time occupancy = cycle_ * dc;
    if (dc) wait(occupancy);
    busy_time_ += occupancy;

    const std::size_t g = engine_.owner_of(*txn);
    STLM_ASSERT(g != GrantEngine::npos,
                "split data phase for an unowned transaction");
    engine_.retire(g, *txn);
    complete_txn(*txn, g, split_addr_cycles(*txn) + dc);
    // The retirement freed an outstanding slot — the address engine may
    // have an eligible master again.
    new_request_.notify_delta();
  }
}

// Completion bookkeeping shared by both engines: statistics, logging and
// waking the initiator.
void CamBase::complete_txn(Txn& txn, std::size_t master,
                           std::uint64_t cycles) {
  // Stat slots accumulate floating-point sums: two same-delta completions
  // from different processes would make the totals depend on dispatch
  // order, so the whole StatSet is audited as one object.
  audit::on_access(sim(), &stats_, audit::Mode::Write, "cam.stats",
                   Module::name());
  txn.t_complete = sim().now();
  // Final-status stamp. This is the one completion point shared by the
  // atomic engine, the split data engine and both fast paths, so every
  // path agrees on the same lifecycle: a watchdog-flagged transaction
  // that still answered Ok is promoted to Timeout here (an Error stays
  // an Error — it already failed harder than the deadline).
  if (txn.deadline_missed && txn.status == Txn::Status::Ok) {
    txn.status = Txn::Status::Timeout;
  }
  const std::size_t bytes = txn.payload_bytes();
  ++*cnt_transactions_;
  ++*(txn.op == Txn::Op::Read ? cnt_reads_ : cnt_writes_);
  *cnt_bytes_ += bytes;
  acc_txn_cycles_->add(static_cast<double>(cycles));
  // latency_ns stays the end-to-end issue→completion span;
  // service_ns = grant→completion isolates the cost once the bus took
  // the request, so a deep split queue reads as queueing, not slowness.
  const double latency_ns = (txn.t_complete - txn.enqueued).to_ns();
  acc_latency_->add(latency_ns);
  acc_service_->add((txn.t_complete - txn.t_grant).to_ns());
  masters_[master]->latency->add(latency_ns);
  const trace::TxnKind kind = txn.op == Txn::Op::Read ? trace::TxnKind::Read
                                                      : trace::TxnKind::Write;
  const trace::TxnStatus row_status = txn_row_status(txn);
  if (log_) {
    log_.record(kind, txn.id, bytes, txn.enqueued, sim().now(), txn.t_grant,
                txn.t_data, row_status, txn.retries);
  }
  // Per-master channel ("<bus>.<master>"): same row keyed under the
  // issuing master, so channel_stats can report per-master latency
  // distributions. Consumers aggregating across channels must skip
  // these supplementary rows (see expl::is_master_channel).
  MasterPort& mp = *masters_[master];
  if (mp.log) {
    mp.log.record(kind, txn.id, bytes, txn.enqueued, sim().now(), txn.t_grant,
                  txn.t_data, row_status, txn.retries);
  }
#ifdef STLM_OBS
  // Timeline spans for this transaction. complete_txn is the single
  // completion point shared by the atomic engine, the split data engine,
  // AND both fast paths — so fast-path completions show up in the trace
  // by construction (the fast-path blind spot the VCD tracer has).
  if (obs::TraceSession* ts = sim().trace_session(); ts != nullptr) {
    ts->txn_phases(full_name(), txn, txn.enqueued);
  }
#endif
  txn.done.complete(sim());  // immediate: initiator resumes within this delta
}

}  // namespace stlm::cam
