#include "cam/cam_base.hpp"

namespace stlm::cam {

CamBase::CamBase(Simulator& sim, std::string name, Time cycle,
                 std::unique_ptr<Arbiter> arbiter, std::size_t width_bytes,
                 std::size_t default_width_bytes)
    : Module(sim, std::move(name)),
      cycle_(cycle),
      width_(width_bytes ? width_bytes : default_width_bytes),
      arbiter_(std::move(arbiter)),
      new_request_(sim, full_name() + ".new_request") {
  STLM_ASSERT(!cycle_.is_zero(), "CAM cycle must be positive: " + full_name());
  STLM_ASSERT(arbiter_ != nullptr, "CAM needs an arbiter: " + full_name());
  acc_grant_wait_ = &stats_.acc("grant_wait_ns");
  acc_txn_cycles_ = &stats_.acc("txn_cycles");
  acc_latency_ = &stats_.acc("latency_ns");
  cnt_transactions_ = &stats_.counter_slot("transactions");
  cnt_reads_ = &stats_.counter_slot("reads");
  cnt_writes_ = &stats_.counter_slot("writes");
  cnt_bytes_ = &stats_.counter_slot("bytes");
  cnt_decode_errors_ = &stats_.counter_slot("decode_errors");
  spawn_thread("engine", [this] { engine(); });
}

std::size_t CamBase::add_master(const std::string& name) {
  auto mp = std::make_unique<MasterPort>();
  mp->cam = this;
  mp->index = masters_.size();
  mp->label = name;
  mp->latency = &stats_.acc("master_" + name + "_latency_ns");
  masters_.push_back(std::move(mp));
  queues_.emplace_back();
  return masters_.size() - 1;
}

ocp::ocp_tl_master_if& CamBase::master_port(std::size_t i) {
  STLM_ASSERT(i < masters_.size(), "master index out of range on " + full_name());
  return *masters_[i];
}

void CamBase::attach_slave(ocp::ocp_tl_slave_if& slave, AddressRange range,
                           const std::string& label) {
  map_.add(range, label);
  slaves_.push_back(&slave);
}

void CamBase::set_txn_logger(trace::TxnLogger* log) {
  log_.bind(log, full_name());
}

double CamBase::utilization() const {
  // Guard: before any simulated time has elapsed there is nothing to
  // normalize by — report an idle bus instead of dividing by zero.
  const Time elapsed = sim().now();
  if (elapsed.is_zero()) return 0.0;
  return busy_time_.to_seconds() / elapsed.to_seconds();
}

void CamBase::MasterPort::transport(Txn& txn) {
  CamBase& c = *cam;
  // A bridge may forward the same descriptor into this CAM while the
  // original initiator still waits on it: shelve the outer waiter (and
  // the outer CAM's enqueue timestamp) for the inner round-trip.
  const Time outer_enqueued = txn.enqueued;
  CompletionEvent::NestedScope nest(txn.done);
  txn.enqueued = c.sim().now();
  txn.status = Txn::Status::Pending;
  c.queues_[index].push_back(txn);
  c.new_request_.notify_delta();
  txn.done.wait(c.sim());
  txn.enqueued = outer_enqueued;
}

void CamBase::engine() {
  std::vector<bool> requesting;
  for (;;) {
    requesting.assign(queues_.size(), false);
    bool any = false;
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      requesting[i] = !queues_[i].empty();
      any = any || requesting[i];
    }
    if (!any) {
      engine_busy_ = false;
      wait(new_request_);
      continue;
    }

    const int granted = arbiter_->pick(requesting, now_cycle());
    STLM_ASSERT(granted >= 0, "arbiter returned no grant with pending masters");
    const auto g = static_cast<std::size_t>(granted);
    Txn* txn = queues_[g].pop_front();
    STLM_ASSERT(txn != nullptr, "granted master has empty queue");

    const bool back_to_back = engine_busy_ && last_txn_end_ == sim().now();
    const std::uint64_t cycles = txn_cycles(*txn, back_to_back);
    const Time occupancy = cycle_ * cycles;

    acc_grant_wait_->add((sim().now() - txn->enqueued).to_ns());
    wait(occupancy);
    busy_time_ += occupancy;

    const std::size_t bytes = txn->payload_bytes();
    const auto slave = map_.decode(txn->addr, bytes ? bytes : 1);
    if (!slave) {
      txn->respond_error();
      ++*cnt_decode_errors_;
    } else {
      slaves_[*slave]->handle(*txn);
    }

    last_txn_end_ = sim().now();
    engine_busy_ = true;

    ++*cnt_transactions_;
    ++*(txn->op == Txn::Op::Read ? cnt_reads_ : cnt_writes_);
    *cnt_bytes_ += bytes;
    acc_txn_cycles_->add(static_cast<double>(cycles));
    const double latency_ns = (sim().now() - txn->enqueued).to_ns();
    acc_latency_->add(latency_ns);
    masters_[g]->latency->add(latency_ns);
    if (log_) {
      log_.record(txn->op == Txn::Op::Read ? trace::TxnKind::Read
                                           : trace::TxnKind::Write,
                  txn->id, bytes, txn->enqueued, sim().now());
    }

    txn->done.complete(sim());  // immediate: master resumes within this delta

    // Yield one delta so just-completed masters can re-enqueue before the
    // next arbitration — otherwise a saturating high-priority master
    // could never actually exercise its priority.
    new_request_.notify_delta();
    wait(new_request_);
  }
}

}  // namespace stlm::cam
