#include "cam/cam_base.hpp"

namespace stlm::cam {

CamBase::CamBase(Simulator& sim, std::string name, Time cycle,
                 std::unique_ptr<Arbiter> arbiter)
    : Module(sim, std::move(name)),
      cycle_(cycle),
      arbiter_(std::move(arbiter)),
      new_request_(sim, full_name() + ".new_request") {
  STLM_ASSERT(!cycle_.is_zero(), "CAM cycle must be positive: " + full_name());
  STLM_ASSERT(arbiter_ != nullptr, "CAM needs an arbiter: " + full_name());
  spawn_thread("engine", [this] { engine(); });
}

std::size_t CamBase::add_master(const std::string& name) {
  auto mp = std::make_unique<MasterPort>();
  mp->cam = this;
  mp->index = masters_.size();
  mp->label = name;
  masters_.push_back(std::move(mp));
  queues_.emplace_back();
  return masters_.size() - 1;
}

ocp::ocp_tl_master_if& CamBase::master_port(std::size_t i) {
  STLM_ASSERT(i < masters_.size(), "master index out of range on " + full_name());
  return *masters_[i];
}

void CamBase::attach_slave(ocp::ocp_tl_slave_if& slave, AddressRange range,
                           const std::string& label) {
  map_.add(range, label);
  slaves_.push_back(&slave);
}

double CamBase::utilization() const {
  const Time elapsed = sim().now();
  if (elapsed.is_zero()) return 0.0;
  return busy_time_.to_seconds() / elapsed.to_seconds();
}

ocp::Response CamBase::MasterPort::transport(const ocp::Request& req) {
  STLM_ASSERT(req.cmd != ocp::Cmd::Idle,
              "transport of IDLE request on " + cam->full_name());
  Pending p(cam->sim(), req);
  cam->queues_[index].push_back(&p);
  cam->new_request_.notify_delta();
  while (!p.complete) wait(p.done);
  return std::move(p.resp);
}

void CamBase::engine() {
  std::vector<bool> requesting;
  for (;;) {
    requesting.assign(queues_.size(), false);
    bool any = false;
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      requesting[i] = !queues_[i].empty();
      any = any || requesting[i];
    }
    if (!any) {
      engine_busy_ = false;
      wait(new_request_);
      continue;
    }

    const int granted = arbiter_->pick(requesting, now_cycle());
    STLM_ASSERT(granted >= 0, "arbiter returned no grant with pending masters");
    Pending* p = queues_[static_cast<std::size_t>(granted)].front();
    queues_[static_cast<std::size_t>(granted)].pop_front();

    const bool back_to_back = engine_busy_ && last_txn_end_ == sim().now();
    const std::uint64_t cycles = txn_cycles(*p->req, back_to_back);
    const Time occupancy = cycle_ * cycles;

    stats_.acc("grant_wait_ns").add((sim().now() - p->enqueued).to_ns());
    wait(occupancy);
    busy_time_ += occupancy;

    const auto slave = map_.decode(p->req->addr, p->req->payload_bytes()
                                                      ? p->req->payload_bytes()
                                                      : 1);
    if (!slave) {
      p->resp = ocp::Response::error();
      stats_.count("decode_errors");
    } else {
      p->resp = slaves_[*slave]->handle(*p->req);
    }

    last_txn_end_ = sim().now();
    engine_busy_ = true;

    stats_.count("transactions");
    stats_.count(p->req->cmd == ocp::Cmd::Read ? "reads" : "writes");
    stats_.count("bytes", p->req->payload_bytes());
    stats_.acc("txn_cycles").add(static_cast<double>(cycles));
    stats_.acc("latency_ns").add((sim().now() - p->enqueued).to_ns());
    stats_.acc("master_" + masters_[static_cast<std::size_t>(granted)]->label +
               "_latency_ns")
        .add((sim().now() - p->enqueued).to_ns());
    if (log_) {
      log_->record(full_name(),
                   p->req->cmd == ocp::Cmd::Read ? trace::TxnKind::Read
                                                 : trace::TxnKind::Write,
                   p->req->payload_bytes(), p->enqueued, sim().now());
    }

    p->complete = true;
    p->done.notify();  // immediate: master resumes within this delta

    // Yield one delta so just-completed masters can re-enqueue before the
    // next arbitration — otherwise a saturating high-priority master
    // could never actually exercise its priority.
    new_request_.notify_delta();
    wait(new_request_);
  }
}

}  // namespace stlm::cam
