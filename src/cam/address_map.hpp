#pragma once
// Address ranges and decode map for communication architecture models.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "kernel/report.hpp"

namespace stlm::cam {

struct AddressRange {
  std::uint64_t base = 0;
  std::uint64_t size = 0;

  std::uint64_t end() const { return base + size; }
  bool contains(std::uint64_t addr, std::uint64_t len = 1) const {
    return addr >= base && addr + len <= end();
  }
  bool overlaps(const AddressRange& o) const {
    return base < o.end() && o.base < end();
  }
  std::string to_string() const;
};

// Maps addresses to slave indices; rejects overlapping ranges.
class AddressMap {
public:
  // Returns the index assigned to the new range.
  std::size_t add(const AddressRange& r, std::string label = "");

  // Index of the range containing [addr, addr+len), or nullopt.
  std::optional<std::size_t> decode(std::uint64_t addr,
                                    std::uint64_t len = 1) const;

  std::size_t size() const { return ranges_.size(); }
  const AddressRange& range(std::size_t i) const { return ranges_.at(i); }
  const std::string& label(std::size_t i) const { return labels_.at(i); }

  // First gap of at least `size` bytes aligned to `align`, at or after
  // `from`. Used by the mapper to allocate mailbox windows.
  std::uint64_t find_free(std::uint64_t size, std::uint64_t align,
                          std::uint64_t from = 0) const;

private:
  std::vector<AddressRange> ranges_;
  std::vector<std::string> labels_;
};

}  // namespace stlm::cam
