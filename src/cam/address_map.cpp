#include "cam/address_map.hpp"

#include <algorithm>

namespace stlm::cam {

std::string AddressRange::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "[0x%llx, 0x%llx)",
                static_cast<unsigned long long>(base),
                static_cast<unsigned long long>(end()));
  return buf;
}

std::size_t AddressMap::add(const AddressRange& r, std::string label) {
  STLM_ASSERT(r.size > 0, "empty address range: " + label);
  for (std::size_t i = 0; i < ranges_.size(); ++i) {
    if (ranges_[i].overlaps(r)) {
      throw ElaborationError("address range " + label + " " + r.to_string() +
                             " overlaps " + labels_[i] + " " +
                             ranges_[i].to_string());
    }
  }
  ranges_.push_back(r);
  labels_.push_back(std::move(label));
  return ranges_.size() - 1;
}

std::optional<std::size_t> AddressMap::decode(std::uint64_t addr,
                                              std::uint64_t len) const {
  for (std::size_t i = 0; i < ranges_.size(); ++i) {
    if (ranges_[i].contains(addr, len)) return i;
  }
  return std::nullopt;
}

std::uint64_t AddressMap::find_free(std::uint64_t size, std::uint64_t align,
                                    std::uint64_t from) const {
  STLM_ASSERT(align > 0, "alignment must be positive");
  auto aligned = [align](std::uint64_t a) {
    return (a + align - 1) / align * align;
  };
  // Sort range ends; walk candidate gaps.
  std::vector<AddressRange> sorted = ranges_;
  std::sort(sorted.begin(), sorted.end(),
            [](const AddressRange& a, const AddressRange& b) {
              return a.base < b.base;
            });
  std::uint64_t candidate = aligned(from);
  for (const auto& r : sorted) {
    if (candidate + size <= r.base) return candidate;
    if (r.end() > candidate) candidate = aligned(r.end());
  }
  return candidate;
}

}  // namespace stlm::cam
