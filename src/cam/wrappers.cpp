#include "cam/wrappers.hpp"

#include <algorithm>

namespace stlm::cam {

// ------------------------------------------------------------- slave ----

ShipSlaveWrapper::ShipSlaveWrapper(Simulator& sim, std::string name,
                                   MailboxLayout layout)
    : Module(sim, std::move(name)),
      layout_(layout),
      chunk_buf_(layout.window_bytes, 0),
      rx_available_(sim, full_name() + ".rx"),
      reply_consumed_(sim, full_name() + ".rack") {
  STLM_ASSERT(layout_.window_bytes >= ocp::kWordBytes,
              "mailbox window too small: " + full_name());
}

void ShipSlaveWrapper::handle(Txn& txn) {
  const std::uint64_t a = txn.addr;

  if (txn.op == Txn::Op::Write) {
    // DATA_IN window: stage chunk bytes.
    if (a >= layout_.data_in() &&
        a + txn.data.size() <= layout_.data_in() + layout_.window_bytes) {
      const std::size_t off = static_cast<std::size_t>(a - layout_.data_in());
      std::copy(txn.data.begin(), txn.data.end(), chunk_buf_.begin() + off);
      txn.respond_ok();
      return;
    }
    // CTRL: commit a chunk. A one-word write commits the bytes staged in
    // DATA_IN; a longer write is a coalesced commit carrying its own
    // chunk payload followed by the trailing control word.
    if (a == layout_.ctrl() && txn.data.size() >= ocp::kWordBytes) {
      const std::size_t n = txn.data.size();
      const std::uint32_t ctrl =
          ocp::u32_from_le(txn.data.data() + (n - ocp::kWordBytes));
      const std::uint32_t len = ctrl & MailboxLayout::kLenMask;
      const bool coalesced = n > ocp::kWordBytes;
      if (len > layout_.window_bytes ||
          (coalesced && len != n - ocp::kWordBytes)) {
        txn.respond_error();
        return;
      }
      const std::uint8_t* chunk =
          coalesced ? txn.data.data() : chunk_buf_.data();
      rx_accum_.insert(rx_accum_.end(), chunk, chunk + len);
      if (ctrl & MailboxLayout::kLastFlag) {
        Txn& m = sim().txn_pool().acquire();
        m.begin_msg((ctrl & MailboxLayout::kRequestFlag) ? Txn::kFlagRequest
                                                         : 0);
        m.data.assign(rx_accum_.begin(), rx_accum_.end());
        rx_accum_.clear();
        rx_queue_.push_back(m);
        ++messages_rx_;
        rx_available_.notify_delta();
      }
      txn.respond_ok();
      return;
    }
    // RACK: current reply chunk consumed.
    if (a == layout_.rack()) {
      const std::size_t chunk =
          std::min<std::size_t>(reply_buf_.size(), layout_.window_bytes);
      reply_buf_.erase(reply_buf_.begin(),
                       reply_buf_.begin() + static_cast<std::ptrdiff_t>(chunk));
      reply_consumed_.notify_delta();
      txn.respond_ok();
      return;
    }
    txn.respond_error();
    return;
  }

  if (txn.op == Txn::Op::Read) {
    // RSTATUS: remaining reply bytes.
    if (a == layout_.rstatus()) {
      std::uint8_t bytes[4];
      ocp::u32_to_le(static_cast<std::uint32_t>(reply_buf_.size()), bytes);
      txn.respond_data(bytes, sizeof bytes);
      return;
    }
    // DATA_OUT window: serve reply bytes from the current chunk.
    if (a >= layout_.data_out() &&
        a + txn.read_bytes <= layout_.data_out() + layout_.window_bytes) {
      const std::size_t off = static_cast<std::size_t>(a - layout_.data_out());
      std::vector<std::uint8_t>& bytes = txn.respond_buffer(txn.read_bytes);
      for (std::size_t i = 0; i < bytes.size(); ++i) {
        if (off + i < reply_buf_.size()) bytes[i] = reply_buf_[off + i];
      }
      return;
    }
    txn.respond_error();
    return;
  }
  txn.respond_error();
}

void ShipSlaveWrapper::send(const ship::ship_serializable_if&) {
  throw ProtocolError("SHIP slave wrapper " + full_name() +
                      " cannot send (master call on slave terminal)");
}

void ShipSlaveWrapper::request(const ship::ship_serializable_if&,
                               ship::ship_serializable_if&) {
  throw ProtocolError("SHIP slave wrapper " + full_name() +
                      " cannot request (master call on slave terminal)");
}

void ShipSlaveWrapper::recv(ship::ship_serializable_if& msg) {
  while (rx_queue_.empty()) wait(rx_available_);
  Txn* m = rx_queue_.pop_front();
  if (m->is_request()) ++pending_replies_;
  ship::from_bytes(msg, m->data);
  sim().txn_pool().release(*m);
}

void ShipSlaveWrapper::reply(const ship::ship_serializable_if& resp) {
  if (pending_replies_ == 0) {
    throw ProtocolError("SHIP wrapper " + full_name() +
                        ": reply without outstanding request");
  }
  --pending_replies_;
  // Wait until the previous reply was fully drained by the master.
  while (!reply_buf_.empty()) wait(reply_consumed_);
  ship::to_bytes_into(resp, reply_buf_);
  // Ensure even empty replies are observable via RSTATUS.
  if (reply_buf_.empty()) reply_buf_.push_back(0);
}

// ------------------------------------------------------------ master ----

ShipMasterWrapper::ShipMasterWrapper(Simulator& sim, std::string name,
                                     CamIf& cam, std::size_t master_index,
                                     MailboxLayout remote, Time poll_interval,
                                     bool coalesce)
    : Module(sim, std::move(name)),
      cam_(cam),
      master_(master_index),
      remote_(remote),
      poll_interval_(poll_interval),
      coalesce_(coalesce) {}

ShipMasterWrapper::BusyGuard::BusyGuard(ShipMasterWrapper& w, const char* call)
    : w_(w) {
  if (w_.busy_) {
    throw ProtocolError("SHIP master wrapper " + w_.full_name() +
                        ": overlapping " + call +
                        " (the wrapper serves one PE at a time)");
  }
  w_.busy_ = true;
}

void ShipMasterWrapper::transport_checked(Txn& txn) {
  ++bus_txns_;
  if (retry_via_ != nullptr) {
    retry_via_->transport(txn);
  } else {
    cam_.master_port(master_).transport(txn);
  }
  // Timeout still carries valid data (the access completed, late); Error
  // and Aborted mean the mailbox protocol cannot make progress.
  if (!txn.data_valid()) {
    throw ProtocolError("SHIP master wrapper " + full_name() +
                        ": bus error at mailbox access");
  }
}

std::uint32_t ShipMasterWrapper::read_u32(std::uint64_t addr) {
  bus_txn_.begin_read(addr, 4, static_cast<std::uint32_t>(master_));
  transport_checked(bus_txn_);
  return ocp::u32_from_le(bus_txn_.resp_data.data());
}

void ShipMasterWrapper::push_message(const ship::ship_serializable_if& msg,
                                     bool is_request) {
  const std::size_t total = ship::to_bytes_into(msg, tx_buf_);
  const std::size_t w = remote_.window_bytes;
  std::size_t sent = 0;
  do {
    const std::size_t chunk = std::min(w, total - sent);
    std::uint32_t ctrl = static_cast<std::uint32_t>(chunk);
    if (sent + chunk == total) ctrl |= MailboxLayout::kLastFlag;
    if (is_request) ctrl |= MailboxLayout::kRequestFlag;
    std::uint8_t cw[4];
    ocp::u32_to_le(ctrl, cw);
    if (coalesce_) {
      // Coalesced commit: [chunk bytes ++ ctrl word] as one burst to
      // CTRL — the data and commit writes merged into a single grant.
      co_buf_.assign(tx_buf_.data() + sent, tx_buf_.data() + sent + chunk);
      co_buf_.insert(co_buf_.end(), cw, cw + sizeof cw);
      bus_txn_.begin_write(remote_.ctrl(), co_buf_.data(), co_buf_.size(),
                           static_cast<std::uint32_t>(master_));
      transport_checked(bus_txn_);
    } else {
      if (chunk > 0) {
        bus_txn_.begin_write(remote_.data_in(), tx_buf_.data() + sent, chunk,
                             static_cast<std::uint32_t>(master_));
        transport_checked(bus_txn_);
      }
      bus_txn_.begin_write(remote_.ctrl(), cw, sizeof cw,
                           static_cast<std::uint32_t>(master_));
      transport_checked(bus_txn_);
    }
    sent += chunk;
  } while (sent < total);
}

void ShipMasterWrapper::pull_reply() {
  rx_buf_.clear();
  for (;;) {
    const std::uint32_t remaining = read_u32(remote_.rstatus());
    if (remaining == 0) {
      if (!rx_buf_.empty()) break;  // fully drained
      ++polls_;
      wait(poll_interval_);
      continue;
    }
    const std::uint32_t chunk =
        std::min<std::uint32_t>(remaining, remote_.window_bytes);
    bus_txn_.begin_read(remote_.data_out(), chunk,
                        static_cast<std::uint32_t>(master_));
    transport_checked(bus_txn_);
    rx_buf_.insert(rx_buf_.end(), bus_txn_.resp_data.begin(),
                   bus_txn_.resp_data.end());
    static constexpr std::uint8_t kZeros[4] = {};
    bus_txn_.begin_write(remote_.rack(), kZeros, sizeof kZeros,
                         static_cast<std::uint32_t>(master_));
    transport_checked(bus_txn_);
    if (chunk == remaining) break;
  }
}

void ShipMasterWrapper::send(const ship::ship_serializable_if& msg) {
  BusyGuard busy(*this, "send");
  push_message(msg, /*is_request=*/false);
}

void ShipMasterWrapper::request(const ship::ship_serializable_if& req,
                                ship::ship_serializable_if& resp) {
  BusyGuard busy(*this, "request");
  push_message(req, /*is_request=*/true);
  pull_reply();
  // Empty replies are padded with one marker byte by the slave wrapper.
  if (rx_buf_.size() == 1 && ship::serialized_size(resp) == 0) rx_buf_.clear();
  ship::from_bytes(resp, rx_buf_);
}

void ShipMasterWrapper::recv(ship::ship_serializable_if&) {
  throw ProtocolError("SHIP master wrapper " + full_name() +
                      " cannot recv (slave call on master terminal)");
}

void ShipMasterWrapper::reply(const ship::ship_serializable_if&) {
  throw ProtocolError("SHIP master wrapper " + full_name() +
                      " cannot reply (slave call on master terminal)");
}

}  // namespace stlm::cam
