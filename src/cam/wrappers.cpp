#include "cam/wrappers.hpp"

#include <algorithm>

namespace stlm::cam {

// ------------------------------------------------------------- slave ----

ShipSlaveWrapper::ShipSlaveWrapper(Simulator& sim, std::string name,
                                   MailboxLayout layout)
    : Module(sim, std::move(name)),
      layout_(layout),
      chunk_buf_(layout.window_bytes, 0),
      rx_available_(sim, full_name() + ".rx"),
      reply_consumed_(sim, full_name() + ".rack") {
  STLM_ASSERT(layout_.window_bytes >= ocp::kWordBytes,
              "mailbox window too small: " + full_name());
}

ocp::Response ShipSlaveWrapper::handle(const ocp::Request& req) {
  const std::uint64_t a = req.addr;

  if (req.cmd == ocp::Cmd::Write) {
    // DATA_IN window: stage chunk bytes.
    if (a >= layout_.data_in() &&
        a + req.data.size() <= layout_.data_in() + layout_.window_bytes) {
      const std::size_t off = static_cast<std::size_t>(a - layout_.data_in());
      std::copy(req.data.begin(), req.data.end(), chunk_buf_.begin() + off);
      return ocp::Response::ok();
    }
    // CTRL: commit the staged chunk.
    if (a == layout_.ctrl() && req.data.size() >= ocp::kWordBytes) {
      std::uint32_t ctrl = 0;
      for (int i = 3; i >= 0; --i) ctrl = (ctrl << 8) | req.data[static_cast<std::size_t>(i)];
      const std::uint32_t len = ctrl & MailboxLayout::kLenMask;
      if (len > layout_.window_bytes) return ocp::Response::error();
      rx_accum_.insert(rx_accum_.end(), chunk_buf_.begin(),
                       chunk_buf_.begin() + len);
      if (ctrl & MailboxLayout::kLastFlag) {
        rx_queue_.push_back(
            Message{std::move(rx_accum_),
                    (ctrl & MailboxLayout::kRequestFlag) != 0});
        rx_accum_.clear();
        ++messages_rx_;
        rx_available_.notify_delta();
      }
      return ocp::Response::ok();
    }
    // RACK: current reply chunk consumed.
    if (a == layout_.rack()) {
      const std::size_t chunk =
          std::min<std::size_t>(reply_buf_.size(), layout_.window_bytes);
      reply_buf_.erase(reply_buf_.begin(),
                       reply_buf_.begin() + static_cast<std::ptrdiff_t>(chunk));
      reply_consumed_.notify_delta();
      return ocp::Response::ok();
    }
    return ocp::Response::error();
  }

  if (req.cmd == ocp::Cmd::Read) {
    // RSTATUS: remaining reply bytes.
    if (a == layout_.rstatus()) {
      const auto len = static_cast<std::uint32_t>(reply_buf_.size());
      std::vector<std::uint8_t> bytes(4);
      for (int i = 0; i < 4; ++i) {
        bytes[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(len >> (8 * i));
      }
      return ocp::Response::ok_with(std::move(bytes));
    }
    // DATA_OUT window: serve reply bytes from the current chunk.
    if (a >= layout_.data_out() &&
        a + req.read_bytes <= layout_.data_out() + layout_.window_bytes) {
      const std::size_t off = static_cast<std::size_t>(a - layout_.data_out());
      std::vector<std::uint8_t> bytes(req.read_bytes, 0);
      for (std::size_t i = 0; i < bytes.size(); ++i) {
        if (off + i < reply_buf_.size()) bytes[i] = reply_buf_[off + i];
      }
      return ocp::Response::ok_with(std::move(bytes));
    }
    return ocp::Response::error();
  }
  return ocp::Response::error();
}

void ShipSlaveWrapper::send(const ship::ship_serializable_if&) {
  throw ProtocolError("SHIP slave wrapper " + full_name() +
                      " cannot send (master call on slave terminal)");
}

void ShipSlaveWrapper::request(const ship::ship_serializable_if&,
                               ship::ship_serializable_if&) {
  throw ProtocolError("SHIP slave wrapper " + full_name() +
                      " cannot request (master call on slave terminal)");
}

void ShipSlaveWrapper::recv(ship::ship_serializable_if& msg) {
  while (rx_queue_.empty()) wait(rx_available_);
  Message m = std::move(rx_queue_.front());
  rx_queue_.pop_front();
  if (m.is_request) ++pending_replies_;
  ship::from_bytes(msg, m.payload);
}

void ShipSlaveWrapper::reply(const ship::ship_serializable_if& resp) {
  if (pending_replies_ == 0) {
    throw ProtocolError("SHIP wrapper " + full_name() +
                        ": reply without outstanding request");
  }
  --pending_replies_;
  // Wait until the previous reply was fully drained by the master.
  while (!reply_buf_.empty()) wait(reply_consumed_);
  reply_buf_ = ship::to_bytes(resp);
  // Ensure even empty replies are observable via RSTATUS.
  if (reply_buf_.empty()) reply_buf_.push_back(0);
}

// ------------------------------------------------------------ master ----

ShipMasterWrapper::ShipMasterWrapper(Simulator& sim, std::string name,
                                     CamIf& cam, std::size_t master_index,
                                     MailboxLayout remote, Time poll_interval)
    : Module(sim, std::move(name)),
      cam_(cam),
      master_(master_index),
      remote_(remote),
      poll_interval_(poll_interval) {}

ocp::Response ShipMasterWrapper::transport_checked(const ocp::Request& req) {
  ++bus_txns_;
  ocp::Response r = cam_.master_port(master_).transport(req);
  if (!r.good()) {
    throw ProtocolError("SHIP master wrapper " + full_name() +
                        ": bus error at mailbox access");
  }
  return r;
}

void ShipMasterWrapper::push_message(const ship::ship_serializable_if& msg,
                                     bool is_request) {
  const std::vector<std::uint8_t> bytes = ship::to_bytes(msg);
  const std::size_t w = remote_.window_bytes;
  std::size_t sent = 0;
  do {
    const std::size_t chunk = std::min(w, bytes.size() - sent);
    if (chunk > 0) {
      transport_checked(ocp::Request::write(
          remote_.data_in(),
          std::vector<std::uint8_t>(bytes.begin() + static_cast<std::ptrdiff_t>(sent),
                                    bytes.begin() + static_cast<std::ptrdiff_t>(sent + chunk)),
          static_cast<std::uint32_t>(master_)));
    }
    sent += chunk;
    std::uint32_t ctrl = static_cast<std::uint32_t>(chunk);
    if (sent == bytes.size()) ctrl |= MailboxLayout::kLastFlag;
    if (is_request) ctrl |= MailboxLayout::kRequestFlag;
    std::vector<std::uint8_t> cw(4);
    for (int i = 0; i < 4; ++i) {
      cw[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(ctrl >> (8 * i));
    }
    transport_checked(ocp::Request::write(remote_.ctrl(), std::move(cw),
                                          static_cast<std::uint32_t>(master_)));
  } while (sent < bytes.size());
}

std::vector<std::uint8_t> ShipMasterWrapper::pull_reply() {
  std::vector<std::uint8_t> reply;
  for (;;) {
    const ocp::Response st = transport_checked(
        ocp::Request::read(remote_.rstatus(), 4, static_cast<std::uint32_t>(master_)));
    std::uint32_t remaining = 0;
    for (int i = 3; i >= 0; --i) {
      remaining = (remaining << 8) | st.data[static_cast<std::size_t>(i)];
    }
    if (remaining == 0) {
      if (!reply.empty()) break;  // fully drained
      ++polls_;
      wait(poll_interval_);
      continue;
    }
    const std::uint32_t chunk =
        std::min<std::uint32_t>(remaining, remote_.window_bytes);
    const ocp::Response data = transport_checked(ocp::Request::read(
        remote_.data_out(), chunk, static_cast<std::uint32_t>(master_)));
    reply.insert(reply.end(), data.data.begin(), data.data.end());
    transport_checked(ocp::Request::write(
        remote_.rack(), std::vector<std::uint8_t>(4, 0),
        static_cast<std::uint32_t>(master_)));
    if (chunk == remaining) break;
  }
  return reply;
}

void ShipMasterWrapper::send(const ship::ship_serializable_if& msg) {
  push_message(msg, /*is_request=*/false);
}

void ShipMasterWrapper::request(const ship::ship_serializable_if& req,
                                ship::ship_serializable_if& resp) {
  push_message(req, /*is_request=*/true);
  std::vector<std::uint8_t> bytes = pull_reply();
  // Empty replies are padded with one marker byte by the slave wrapper.
  if (bytes.size() == 1 && ship::serialized_size(resp) == 0) bytes.clear();
  ship::from_bytes(resp, bytes);
}

void ShipMasterWrapper::recv(ship::ship_serializable_if&) {
  throw ProtocolError("SHIP master wrapper " + full_name() +
                      " cannot recv (slave call on master terminal)");
}

void ShipMasterWrapper::reply(const ship::ship_serializable_if&) {
  throw ProtocolError("SHIP master wrapper " + full_name() +
                      " cannot reply (slave call on master terminal)");
}

}  // namespace stlm::cam
