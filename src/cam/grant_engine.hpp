#pragma once
// Multi-queue grant engine: arbitration plus outstanding-transaction
// bookkeeping shared by the bus-style CAMs.
//
// The engine tracks, per master, a pending request queue (an intrusive
// TxnQueue — no allocation on enqueue/dequeue) and the set of granted but
// not-yet-retired transactions, keyed by txn id. A master is *eligible*
// for arbitration while it has a pending request and fewer than
// `max_outstanding` transactions in flight; `grant()` arbitrates among
// eligible masters only. This is what lets a split bus accept a new
// address phase while prior responses are still in flight, and what caps
// how deep each master may pipeline.
//
// With `max_outstanding == 1` and a caller that retires every grant
// before arbitrating again (the atomic engine loop), eligibility reduces
// to "has a pending request" — exactly the pre-split behaviour, so the
// atomic timing path is unchanged by construction.

#include <cstdint>
#include <memory>
#include <vector>

#include "cam/arbiter.hpp"
#include "kernel/txn.hpp"

namespace stlm::cam {

/// Split/out-of-order transaction mode of a bus CAM.
///
/// The pair mirrors the `Platform` knobs: `split_txns` turns the
/// pipelined (split address/data phase) engine on, `max_outstanding`
/// bounds the transactions each master may have in flight past the
/// address phase. `max_outstanding == 1` is defined to reproduce the
/// atomic engine's simulated timing bit-identically, so `active()` only
/// reports true when both knobs ask for real pipelining.
struct SplitConfig {
  bool split_txns = false;        ///< enable the split (pipelined) engine
  std::size_t max_outstanding = 1;  ///< per-master in-flight cap (>= 1)

  /// True when the split engine should actually run.
  bool active() const { return split_txns && max_outstanding > 1; }
};

/// Arbitration + per-master request tracking for bus CAMs.
///
/// Pure bookkeeping — the engine never waits or touches the simulator;
/// the owning CAM's processes decide when to call `grant()` and how many
/// cycles each phase costs. One GrantEngine instance serves both the
/// atomic and the split engine loops.
class GrantEngine {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// @param arbiter          policy picking among eligible masters (owned)
  /// @param max_outstanding  per-master in-flight cap, clamped to >= 1
  GrantEngine(std::unique_ptr<Arbiter> arbiter, std::size_t max_outstanding);

  /// Register a new master; returns its index.
  std::size_t add_master();
  std::size_t master_count() const { return masters_.size(); }

  /// Queue a pending request for master `m` (intrusive; no allocation).
  void enqueue(std::size_t m, Txn& txn);

  /// Arbitrate among eligible masters at bus cycle `cycle`. On success
  /// pops the winner's oldest request, marks it in flight, stores the
  /// winning master in `*master_out` and returns the descriptor; returns
  /// nullptr when no master is eligible (idle or all at their cap).
  Txn* grant(std::uint64_t cycle, std::size_t* master_out);

  /// Remove a granted transaction from master `m`'s in-flight set
  /// (matched by txn id). Must be called exactly once per grant.
  void retire(std::size_t m, const Txn& txn);

  /// Master whose in-flight set holds `txn` (by id), or `npos`.
  std::size_t owner_of(const Txn& txn) const;

  /// True if any master has a queued request (regardless of caps).
  bool any_pending() const;

  /// True if any master has a granted, not-yet-retired transaction.
  bool any_inflight() const;

  /// Record a fast-path grant to master `m` without queue bookkeeping:
  /// runs the arbiter with only `m` eligible, so stateful policies
  /// (round-robin rotation, TDMA reclamation) evolve exactly as if the
  /// engine had granted it. Only legal when the fast path verified no
  /// other master was pending (then `m` is the pick the engine would
  /// have made).
  void note_fast_grant(std::size_t m, std::uint64_t cycle);

  std::size_t pending_count(std::size_t m) const {
    return masters_[m].pending.size();
  }
  std::size_t inflight_count(std::size_t m) const {
    return masters_[m].inflight_ids.size();
  }
  std::size_t max_outstanding() const { return max_outstanding_; }
  const Arbiter& arbiter() const { return *arbiter_; }

 private:
  struct MasterState {
    TxnQueue pending;                        // intrusive FIFO of requests
    std::vector<std::uint64_t> inflight_ids;  // granted, not yet retired
  };

  std::unique_ptr<Arbiter> arbiter_;
  std::size_t max_outstanding_;
  std::vector<MasterState> masters_;
  std::vector<bool> eligible_;  // scratch mask reused across grant() calls
};

}  // namespace stlm::cam
