#include "cam/buses.hpp"

#include "fault/fault.hpp"
#include "obs/trace_session.hpp"

namespace stlm::cam {

CrossbarCam::CrossbarCam(Simulator& sim, std::string name, Time cycle,
                         std::size_t width_bytes, SplitConfig split,
                         bool fast_targets)
    : Module(sim, std::move(name)),
      cycle_(cycle),
      width_(width_bytes ? width_bytes : kDefaultWidthBytes),
      split_(split),
      fast_targets_(fast_targets),
      slot_free_(sim, full_name() + ".slot_free") {
  STLM_ASSERT(!cycle_.is_zero(), "crossbar cycle must be positive: " + full_name());
}

std::size_t CrossbarCam::add_master(const std::string& name) {
  auto mp = std::make_unique<MasterPort>();
  mp->xbar = this;
  mp->index = masters_.size();
  mp->label = name;
  if (logger_) mp->log.bind(logger_, full_name() + "." + name);
  masters_.push_back(std::move(mp));
  inflight_.push_back(0);
  return masters_.size() - 1;
}

ocp::ocp_tl_master_if& CrossbarCam::master_port(std::size_t i) {
  STLM_ASSERT(i < masters_.size(), "master index out of range on " + full_name());
  return *masters_[i];
}

void CrossbarCam::attach_slave(ocp::ocp_tl_slave_if& slave, AddressRange range,
                               const std::string& label) {
  map_.add(range, label);
  slaves_.push_back(&slave);
  slave_fast_.push_back(slave.fast_capable());
  lanes_.push_back(
      std::make_unique<Mutex>(sim(), full_name() + ".lane" + label));
  lane_stats_.push_back(std::make_unique<LaneStats>());
  if (split_.active()) {
    lane_q_.push_back(std::make_unique<TxnQueue>());
    lane_avail_.push_back(
        std::make_unique<Event>(sim(), full_name() + ".lane" + label + ".avail"));
    const std::size_t lane = lane_q_.size() - 1;
    spawn_thread("lane_" + label, [this, lane] { lane_engine(lane); });
  }
}

double CrossbarCam::utilization() const {
  const Time elapsed = sim().now();
  if (elapsed.is_zero() || lanes_.empty()) return 0.0;
  // Aggregate lane busy time normalized by lanes (parallel resource).
  return busy_time_.to_seconds() /
         (elapsed.to_seconds() * static_cast<double>(lanes_.size()));
}

trace::StatSet& CrossbarCam::stats() {
  // Recompute the lane-derived slots from the shards on every read. The
  // fold order is lane-index order — fixed at elaboration — so the
  // published floating-point sums cannot depend on how the scheduler
  // interleaved the lanes. decode_errors is counted directly on stats_
  // (integer increments commute) and survives the fold untouched.
  trace::Accumulator latency, service;
  std::uint64_t txns = 0, bytes = 0;
  for (const auto& ls : lane_stats_) {
    latency.merge(ls->latency);
    service.merge(ls->service);
    txns += ls->transactions;
    bytes += ls->bytes;
  }
  stats_.acc("latency_ns") = latency;
  stats_.acc("service_ns") = service;
  stats_.counter_slot("transactions") = txns;
  stats_.counter_slot("bytes") = bytes;
  for (std::size_t m = 0; m < masters_.size(); ++m) {
    trace::Accumulator per_master;
    for (const auto& ls : lane_stats_) {
      if (m < ls->per_master.size()) per_master.merge(ls->per_master[m]);
    }
    stats_.acc("master_" + masters_[m]->label + "_latency_ns") = per_master;
  }
  return stats_;
}

void CrossbarCam::set_txn_logger(trace::TxnLogger* log) {
  logger_ = log;
  log_.bind(log, full_name());
  for (auto& mp : masters_) mp->log.bind(log, full_name() + "." + mp->label);
}

void CrossbarCam::MasterPort::transport(Txn& txn) {
  CrossbarCam& x = *xbar;
  audit::on_access(x.sim(), this, audit::Mode::Write, "cam.master", label);
  if (!x.split_.active()) {
    x.route(index, txn);
    return;
  }
  // Split mode: a blocking transport is post + wait. Shelve the outer
  // waiter/bookkeeping like CamBase does, so bridges can forward the
  // same descriptor into a split crossbar.
  const std::uint32_t outer_master = txn.master_id;
  Txn::PhaseShelf shelf(txn);
  CompletionEvent::NestedScope nest(txn.done);
  x.post(index, txn);
  txn.done.wait(x.sim());
  txn.master_id = outer_master;
}

void CrossbarCam::post(std::size_t master, Txn& txn) {
  STLM_ASSERT(master < masters_.size(),
              "master index out of range on " + full_name());
  audit::on_access(sim(), masters_[master].get(), audit::Mode::Write,
                   "cam.master", masters_[master]->label);
  if (!split_.active()) {
    // CamIf::post contract: without split support the call may run the
    // transaction to completion before returning — the initiator's
    // later done.wait() then returns immediately.
    route(master, txn);
    txn.done.complete(sim());
    return;
  }
  const std::size_t bytes = txn.payload_bytes();
  const auto slave = map_.decode(txn.addr, bytes ? bytes : 1);
  txn.enqueued = sim().now();
  txn.reset_phases();
  txn.status = Txn::Status::Pending;
  if (!slave) {
    stats_.count("decode_errors");
    txn.respond_error();
    txn.done.complete(sim());
    return;
  }
  // The access point stamps its port index so the lane engine can retire
  // the right master's slot and statistics (restored by transport()).
  txn.master_id = static_cast<std::uint32_t>(master);
  // Enforce the per-master outstanding cap at the issue point — a master
  // cannot launch deeper than its outstanding capability.
  while (inflight_[master] >= split_.max_outstanding) wait(slot_free_);
  ++inflight_[master];
  // Lanes are arbiter-free FIFOs: same-delta pushes from two masters
  // would be served in dispatch order, so the push side of each lane
  // queue is an audited object (the pop side is a single lane engine).
  audit::on_access(sim(), lane_q_[*slave].get(), audit::Mode::Write,
                   "cam.lane", Module::name());
  lane_q_[*slave]->push_back(txn);
  lane_avail_[*slave]->notify_delta();
}

void CrossbarCam::lane_engine(std::size_t lane) {
  for (;;) {
    while (lane_q_[lane]->empty()) wait(*lane_avail_[lane]);
    Txn* txn = lane_q_[lane]->pop_front();
    // Winning the lane is the crossbar's grant; route setup and data
    // move in one occupancy wait, so the data stamp fuses with it.
    txn->t_grant = sim().now();
    txn->t_data = txn->t_grant;
    const std::size_t bytes = txn->payload_bytes();
    const std::uint64_t beats = beats_for(bytes, width_);
    const Time occupancy = cycle_ * (1 + beats);  // route setup + data
    serve(lane, *txn, occupancy);
    const auto master = static_cast<std::size_t>(txn->master_id);
    finish(master, lane, *txn, txn->enqueued);
    --inflight_[master];
    slot_free_.notify_delta();
    txn->done.complete(sim());
  }
}

void CrossbarCam::route(std::size_t master, Txn& txn) {
  const Time start = sim().now();
  const std::size_t bytes = txn.payload_bytes();
  const auto slave = map_.decode(txn.addr, bytes ? bytes : 1);
  if (!slave) {
    stats_.count("decode_errors");
    txn.respond_error();
    return;
  }
  // Shelve any outer layer's phase stamps (a bridge may forward the same
  // descriptor through here mid-transaction).
  Txn::PhaseShelf shelf(txn);
  LockGuard lane(*lanes_[*slave]);
  txn.t_grant = sim().now();  // lane acquired = granted
  txn.t_data = txn.t_grant;   // route setup + data fused in one wait
  const std::uint64_t beats = beats_for(bytes, width_);
  const Time occupancy = cycle_ * (1 + beats);  // route setup + data
  serve(*slave, txn, occupancy);
  finish(master, *slave, txn, start);
}

void CrossbarCam::serve(std::size_t s, Txn& txn, Time occ) {
  wait(occ);
  busy_time_ += occ;
  // Injected faults replace the target delivery: a latency spike is
  // charged on the lane (before the verdict, like a slow decode), an
  // error answers without touching the slave. Draw order per lane is the
  // lane's deterministic service order, so same-seed runs inject the
  // same faults at the same instants.
  if (injector_ != nullptr) {
    const auto f = injector_->on_access(s);
    if (f.spike_cycles != 0) wait(cycle_ * f.spike_cycles);
    if (f.error) {
      txn.respond_error();
#ifdef STLM_OBS
      if (obs::TraceSession* ts = sim().trace_session(); ts != nullptr) {
        ts->instant(full_name(), "fault", sim().now());
      }
#endif
      return;
    }
  }
  if (fast_targets_ && slave_fast_[s]) {
    const Time lat = slaves_[s]->fast_handle(txn);
    if (!lat.is_zero()) wait(lat);
    return;
  }
  slaves_[s]->handle(txn);
}

// Statistics/logging shared by the atomic route and the split lanes.
// Completions run concurrently across lanes, so everything here lands in
// the lane's own shard (see LaneStats); within one lane, updates are
// totally ordered — the lane mutex (atomic) or the single lane engine
// (split) — which is exactly what the audit key asserts.
void CrossbarCam::finish(std::size_t master, std::size_t lane, Txn& txn,
                         Time start) {
  audit::on_access(sim(), lane_stats_[lane].get(), audit::Mode::Write,
                   "cam.stats", Module::name());
  txn.t_complete = sim().now();
  // Completion point: an Ok answer that arrived after its armed watchdog
  // deadline is a Timeout (same promotion rule as CamBase::complete_txn).
  if (txn.deadline_missed && txn.status == Txn::Status::Ok) {
    txn.status = Txn::Status::Timeout;
  }
  const std::size_t bytes = txn.payload_bytes();
  LaneStats& ls = *lane_stats_[lane];
  ++ls.transactions;
  ls.bytes += bytes;
  const double latency_ns = (txn.t_complete - start).to_ns();
  ls.latency.add(latency_ns);
  ls.service.add((txn.t_complete - txn.t_grant).to_ns());
  if (ls.per_master.size() <= master) ls.per_master.resize(masters_.size());
  ls.per_master[master].add(latency_ns);
  const auto kind = txn.op == Txn::Op::Read ? trace::TxnKind::Read
                                            : trace::TxnKind::Write;
  const trace::TxnStatus row_status = txn_row_status(txn);
  if (log_) {
    log_.record(kind, txn.id, bytes, start, sim().now(), txn.t_grant,
                txn.t_data, row_status, txn.retries);
  }
  // Per-master channel: same row under "<bus>.<master>". Consumers
  // aggregating across channels must skip these supplementary rows (see
  // expl::is_master_channel).
  if (masters_[master]->log) {
    masters_[master]->log.record(kind, txn.id, bytes, start, sim().now(),
                                 txn.t_grant, txn.t_data, row_status,
                                 txn.retries);
  }
#ifdef STLM_OBS
  // Timeline spans: `start` (the outer arrival time) is the issue stamp —
  // hierarchical routes re-stamp txn.enqueued per hop, but the span
  // should cover the whole crossbar round trip.
  if (obs::TraceSession* ts = sim().trace_session(); ts != nullptr) {
    ts->txn_phases(full_name(), txn, start);
  }
#endif
}

}  // namespace stlm::cam
