#include "cam/buses.hpp"

namespace stlm::cam {

CrossbarCam::CrossbarCam(Simulator& sim, std::string name, Time cycle,
                         std::size_t width_bytes)
    : Module(sim, std::move(name)),
      cycle_(cycle),
      width_(width_bytes ? width_bytes : kDefaultWidthBytes) {
  STLM_ASSERT(!cycle_.is_zero(), "crossbar cycle must be positive: " + full_name());
}

std::size_t CrossbarCam::add_master(const std::string& name) {
  auto mp = std::make_unique<MasterPort>();
  mp->xbar = this;
  mp->index = masters_.size();
  mp->label = name;
  mp->latency = &stats_.acc("master_" + name + "_latency_ns");
  masters_.push_back(std::move(mp));
  return masters_.size() - 1;
}

ocp::ocp_tl_master_if& CrossbarCam::master_port(std::size_t i) {
  STLM_ASSERT(i < masters_.size(), "master index out of range on " + full_name());
  return *masters_[i];
}

void CrossbarCam::attach_slave(ocp::ocp_tl_slave_if& slave, AddressRange range,
                               const std::string& label) {
  map_.add(range, label);
  slaves_.push_back(&slave);
  lanes_.push_back(
      std::make_unique<Mutex>(sim(), full_name() + ".lane" + label));
}

double CrossbarCam::utilization() const {
  const Time elapsed = sim().now();
  if (elapsed.is_zero() || lanes_.empty()) return 0.0;
  // Aggregate lane busy time normalized by lanes (parallel resource).
  return busy_time_.to_seconds() /
         (elapsed.to_seconds() * static_cast<double>(lanes_.size()));
}

void CrossbarCam::set_txn_logger(trace::TxnLogger* log) {
  log_.bind(log, full_name());
}

void CrossbarCam::MasterPort::transport(Txn& txn) {
  xbar->route(index, txn);
}

void CrossbarCam::route(std::size_t master, Txn& txn) {
  const Time start = sim().now();
  const std::size_t bytes = txn.payload_bytes();
  const auto slave = map_.decode(txn.addr, bytes ? bytes : 1);
  if (!slave) {
    stats_.count("decode_errors");
    txn.respond_error();
    return;
  }
  LockGuard lane(*lanes_[*slave]);
  const std::uint64_t beats = beats_for(bytes, width_);
  const Time occupancy = cycle_ * (1 + beats);  // route setup + data
  wait(occupancy);
  busy_time_ += occupancy;
  slaves_[*slave]->handle(txn);

  stats_.count("transactions");
  stats_.count("bytes", bytes);
  const double latency_ns = (sim().now() - start).to_ns();
  stats_.acc("latency_ns").add(latency_ns);
  masters_[master]->latency->add(latency_ns);
  if (log_) {
    log_.record(txn.op == Txn::Op::Read ? trace::TxnKind::Read
                                        : trace::TxnKind::Write,
                txn.id, bytes, start, sim().now());
  }
}

}  // namespace stlm::cam
