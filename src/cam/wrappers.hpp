#pragma once
// SHIP <-> OCP wrappers: refine a SHIP channel onto a communication
// architecture model without touching PE code (paper §3).
//
// A mapped channel becomes a pair:
//   * ShipSlaveWrapper  — sits at the slave PE; it is an OCP TL slave on
//     the CAM (a mailbox with a data window, control/status registers and
//     chunked flow control) and presents the SHIP slave calls
//     (recv/reply) to its PE.
//   * ShipMasterWrapper — sits at the master PE; it presents the SHIP
//     master calls (send/request) and converts them into burst write
//     transactions into the remote mailbox, polling the status register
//     for replies.
//
// Mailbox register map (word offsets from the wrapper's base address):
//   +0x00  CTRL     W  chunk descriptor: len[23:0] | last[24] | request[25].
//                      A write longer than one word is a *coalesced
//                      commit*: the leading len bytes are the chunk
//                      payload and the trailing word is the descriptor
//                      (burst coalescing merges DATA_IN + CTRL).
//   +0x04  RSTATUS  R  remaining reply bytes (0 = no reply pending)
//   +0x08  RACK     W  master consumed the current reply chunk
//   +0x10  DATA_IN  W  inbound chunk window  (window_bytes wide)
//   +0x10+W DATA_OUT R outbound (reply) chunk window (window_bytes wide)

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "cam/cam_if.hpp"
#include "kernel/module.hpp"
#include "ship/channel.hpp"

namespace stlm::cam {

struct MailboxLayout {
  std::uint64_t base = 0;
  std::uint32_t window_bytes = 256;

  std::uint64_t ctrl() const { return base + 0x00; }
  std::uint64_t rstatus() const { return base + 0x04; }
  std::uint64_t rack() const { return base + 0x08; }
  std::uint64_t data_in() const { return base + 0x10; }
  std::uint64_t data_out() const { return base + 0x10 + window_bytes; }
  std::uint64_t span() const { return 0x10 + 2ull * window_bytes; }
  AddressRange range() const { return AddressRange{base, span()}; }

  static constexpr std::uint32_t kLenMask = 0x00ffffff;
  static constexpr std::uint32_t kLastFlag = 1u << 24;
  static constexpr std::uint32_t kRequestFlag = 1u << 25;
};

class ShipSlaveWrapper final : public Module,
                               public ocp::ocp_tl_slave_if,
                               public ship::ship_if {
public:
  // Caller must attach this wrapper to the CAM: cam.attach_slave(w,
  // layout.range(), name). (The mapper does this automatically.)
  ShipSlaveWrapper(Simulator& sim, std::string name, MailboxLayout layout);

  // --- OCP slave side (bus-facing) ------------------------------------
  using ocp::ocp_tl_slave_if::handle;
  void handle(Txn& txn) override;
  // The mailbox FSM is wait-free (register decode + delta notifies
  // only), so the default zero-latency fast_handle() — which simply
  // runs handle() at the effective access time — is exact.
  bool fast_capable() const override { return true; }

  // --- SHIP slave side (PE-facing) ------------------------------------
  void send(const ship::ship_serializable_if&) override;
  void recv(ship::ship_serializable_if& msg) override;
  void request(const ship::ship_serializable_if&,
               ship::ship_serializable_if&) override;
  void reply(const ship::ship_serializable_if& resp) override;
  bool message_available() const override { return !rx_queue_.empty(); }
  ship::Role role() const override { return ship::Role::Slave; }
  const std::string& channel_name() const override { return Module::name(); }

  const MailboxLayout& layout() const { return layout_; }
  std::uint64_t messages_received() const { return messages_rx_; }

private:
  MailboxLayout layout_;
  std::vector<std::uint8_t> chunk_buf_;   // DATA_IN staging
  std::vector<std::uint8_t> rx_accum_;    // chunks of the current message
  TxnQueue rx_queue_;                     // completed messages (pooled Txns)
  Event rx_available_;
  std::vector<std::uint8_t> reply_buf_;   // remaining reply bytes
  Event reply_consumed_;
  std::uint64_t pending_replies_ = 0;
  std::uint64_t messages_rx_ = 0;
};

class ShipMasterWrapper final : public Module, public ship::ship_if {
public:
  // `poll_interval` is the simulated gap between RSTATUS polls while
  // waiting for a reply (models a real master's polling loop).
  // `coalesce` enables burst coalescing: the two adjacent same-target
  // writes each chunk needs (DATA_IN burst, then the CTRL commit word)
  // are merged into one bus burst to CTRL carrying [chunk bytes ++ ctrl
  // word] — half the mailbox transactions per chunk, one bus setup
  // instead of two. The slave wrapper decodes both spellings, so
  // coalescing is a master-side knob (Platform::coalesce_bursts).
  ShipMasterWrapper(Simulator& sim, std::string name, CamIf& cam,
                    std::size_t master_index, MailboxLayout remote,
                    Time poll_interval, bool coalesce = false);

  void send(const ship::ship_serializable_if& msg) override;
  void recv(ship::ship_serializable_if&) override;
  void request(const ship::ship_serializable_if& req,
               ship::ship_serializable_if& resp) override;
  void reply(const ship::ship_serializable_if&) override;
  bool message_available() const override { return false; }
  ship::Role role() const override { return ship::Role::Master; }
  const std::string& channel_name() const override { return Module::name(); }

  std::uint64_t bus_transactions() const { return bus_txns_; }
  std::uint64_t poll_count() const { return polls_; }

  // Route mailbox transactions through an initiator-side shim (a
  // RetryPolicy) instead of the CAM port directly. nullptr restores the
  // direct path. The shim must forward to the same master index this
  // wrapper was wired with.
  void set_retry(ocp::ocp_tl_master_if* via) { retry_via_ = via; }

private:
  void push_message(const ship::ship_serializable_if& msg, bool is_request);
  void pull_reply();  // fills rx_buf_
  void transport_checked(Txn& txn);
  std::uint32_t read_u32(std::uint64_t addr);

  // The wrapper serves one PE: its SHIP calls are strictly sequential, so
  // one reusable descriptor and two scratch buffers suffice. BusyGuard
  // turns accidental overlapping use (two processes on one wrapper) into
  // a loud protocol error instead of silent descriptor corruption.
  class BusyGuard {
  public:
    BusyGuard(ShipMasterWrapper& w, const char* call);
    ~BusyGuard() { w_.busy_ = false; }

  private:
    ShipMasterWrapper& w_;
  };

  CamIf& cam_;
  std::size_t master_;
  MailboxLayout remote_;
  Time poll_interval_;
  bool coalesce_;
  ocp::ocp_tl_master_if* retry_via_ = nullptr;
  Txn bus_txn_;                       // reusable bus descriptor
  std::vector<std::uint8_t> tx_buf_;  // serialization scratch
  std::vector<std::uint8_t> co_buf_;  // coalesced [chunk ++ ctrl] scratch
  std::vector<std::uint8_t> rx_buf_;  // reply reassembly scratch
  bool busy_ = false;
  std::uint64_t bus_txns_ = 0;
  std::uint64_t polls_ = 0;
};

// Adapter: exposes an OCP TL slave that forwards every request into a TL
// master interface. Used to hang a pin-level PE (through OcpPinSlave) or
// a bridge-like component in front of a CAM master port.
class TlForwarder final : public ocp::ocp_tl_slave_if {
public:
  explicit TlForwarder(ocp::ocp_tl_master_if& down) : down_(down) {}
  using ocp::ocp_tl_slave_if::handle;
  void handle(Txn& txn) override { down_.transport(txn); }

private:
  ocp::ocp_tl_master_if& down_;
};

}  // namespace stlm::cam
