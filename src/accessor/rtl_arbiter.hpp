#pragma once
// RTL bus arbiter for the accessor-level (pin-accurate) bus.
//
// One clocked process: while the bus is idle it grants the
// highest-priority requesting master; ownership is released on the
// completion pulse. Request lines are registered at construction — one
// Signal<bool> per master accessor.

#include <cstdint>
#include <string>
#include <vector>

#include "accessor/bus_pins.hpp"
#include "kernel/clock.hpp"
#include "kernel/module.hpp"

namespace stlm::accessor {

class RtlArbiter final : public Module {
public:
  RtlArbiter(Simulator& sim, std::string name, BusPins& bus, Clock& clk);

  // Register a master's request line; returns the master id. Must be
  // called before the simulation starts.
  std::uint8_t add_request_line(Signal<bool>& req);

  std::uint64_t grants() const { return grants_; }

private:
  void on_edge();

  BusPins& bus_;
  std::vector<Signal<bool>*> requests_;
  std::uint8_t owner_ = kNoGrant;
  std::uint64_t grants_ = 0;
};

}  // namespace stlm::accessor
