#pragma once
// Pin-level bus signal bundle used by the accessors (PLB-like).
//
// Accessors are the paper's prototyping vehicle: fully synthesizable RTL
// bridges between a PE's pin-level OCP interface and a target bus. This
// bundle models the shared wires of a CoreConnect-style processor local
// bus: a central arbiter grant, one address group, separate write/read
// data groups with per-beat handshakes, and a completion pulse.
//
// Synthesizable discipline: structure is built in constructors, each FSM
// is a single clocked process, all cross-module state lives in signals,
// and nothing is allocated after elaboration.

#include <cstdint>
#include <string>

#include "kernel/signal.hpp"
#include "kernel/simulator.hpp"

namespace stlm::accessor {

inline constexpr std::uint8_t kNoGrant = 0xff;

struct BusPins {
  BusPins(Simulator& sim, const std::string& name)
      : Grant(sim, name + ".Grant", kNoGrant),
        PAValid(sim, name + ".PAValid", false),
        ABus(sim, name + ".ABus", 0),
        MCmd(sim, name + ".MCmd", 0),
        BurstLen(sim, name + ".BurstLen", 1),
        ByteCnt(sim, name + ".ByteCnt", 0),
        MId(sim, name + ".MId", 0),
        WrDBus(sim, name + ".WrDBus", 0),
        WrValid(sim, name + ".WrValid", false),
        WrAck(sim, name + ".WrAck", false),
        RdDBus(sim, name + ".RdDBus", 0),
        RdAck(sim, name + ".RdAck", false),
        Comp(sim, name + ".Comp", false),
        CompErr(sim, name + ".CompErr", false) {}

  BusPins(const BusPins&) = delete;
  BusPins& operator=(const BusPins&) = delete;

  Signal<std::uint8_t> Grant;    // arbiter: granted master id (kNoGrant = idle)
  Signal<bool> PAValid;          // address phase valid
  Signal<std::uint32_t> ABus;
  Signal<std::uint8_t> MCmd;     // ocp::Cmd encoding
  Signal<std::uint8_t> BurstLen;
  Signal<std::uint32_t> ByteCnt;
  Signal<std::uint8_t> MId;
  Signal<std::uint32_t> WrDBus;  // write data group
  Signal<bool> WrValid;
  Signal<bool> WrAck;
  Signal<std::uint32_t> RdDBus;  // read data group
  Signal<bool> RdAck;
  Signal<bool> Comp;             // completion pulse
  Signal<bool> CompErr;
};

}  // namespace stlm::accessor
