#pragma once
// Master accessor: connects a pin-level-OCP master PE to the pin-level
// bus (paper §3, "communication architecture accessors").
//
// Composition: an OCP pin-slave front end faces the PE's pins; its device
// callback is the bus-master engine, which requests the bus, runs the
// address and data phases wire-by-wire, and waits for completion.

#include <string>

#include "accessor/bus_pins.hpp"
#include "accessor/rtl_arbiter.hpp"
#include "kernel/clock.hpp"
#include "kernel/module.hpp"
#include "ocp/pin_slave.hpp"
#include "ocp/pins.hpp"

namespace stlm::accessor {

class MasterAccessor final : public Module {
public:
  MasterAccessor(Simulator& sim, std::string name, ocp::OcpPins& pe_pins,
                 BusPins& bus, RtlArbiter& arbiter, Clock& clk);

  std::uint64_t transactions() const { return engine_.transactions; }

private:
  struct BusEngine final : ocp::ocp_tl_slave_if {
    using ocp::ocp_tl_slave_if::handle;
    void handle(Txn& txn) override;
    MasterAccessor* self = nullptr;
    std::uint64_t transactions = 0;
  };

  BusPins& bus_;
  Clock& clk_;
  Signal<bool> req_line_;
  std::uint8_t my_id_;
  BusEngine engine_;
  ocp::OcpPinSlave pe_side_;
};

}  // namespace stlm::accessor
