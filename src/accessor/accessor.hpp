#pragma once
// Umbrella header for the accessor (RTL prototyping) library.

#include "accessor/bus_pins.hpp"
#include "accessor/master_accessor.hpp"
#include "accessor/rtl_arbiter.hpp"
#include "accessor/slave_accessor.hpp"
