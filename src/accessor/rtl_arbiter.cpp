#include "accessor/rtl_arbiter.hpp"

namespace stlm::accessor {

RtlArbiter::RtlArbiter(Simulator& sim, std::string name, BusPins& bus,
                       Clock& clk)
    : Module(sim, std::move(name)), bus_(bus) {
  spawn_method("arb", [this] { on_edge(); }, {&clk.posedge_event()},
               /*run_at_start=*/false);
}

std::uint8_t RtlArbiter::add_request_line(Signal<bool>& req) {
  STLM_ASSERT(!sim().initialized(),
              "request lines must be registered before simulation: " +
                  full_name());
  STLM_ASSERT(requests_.size() < kNoGrant, "too many masters: " + full_name());
  requests_.push_back(&req);
  return static_cast<std::uint8_t>(requests_.size() - 1);
}

void RtlArbiter::on_edge() {
  if (owner_ != kNoGrant) {
    if (bus_.Comp.read()) {
      owner_ = kNoGrant;
      bus_.Grant.write(kNoGrant);
    }
    return;
  }
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    if (requests_[i]->read()) {
      owner_ = static_cast<std::uint8_t>(i);
      bus_.Grant.write(owner_);
      ++grants_;
      return;
    }
  }
}

}  // namespace stlm::accessor
