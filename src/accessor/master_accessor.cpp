#include "accessor/master_accessor.hpp"

namespace stlm::accessor {

MasterAccessor::MasterAccessor(Simulator& sim, std::string name,
                               ocp::OcpPins& pe_pins, BusPins& bus,
                               RtlArbiter& arbiter, Clock& clk)
    : Module(sim, std::move(name)),
      bus_(bus),
      clk_(clk),
      req_line_(sim, full_name() + ".req", false),
      my_id_(arbiter.add_request_line(req_line_)),
      pe_side_(sim, full_name() + ".pe_side", pe_pins, clk, engine_, 0, this) {
  engine_.self = this;
}

void MasterAccessor::BusEngine::handle(Txn& txn) {
  MasterAccessor& a = *self;
  Event& edge = a.clk_.posedge_event();
  const std::uint32_t beats = txn.beats();

  // Request and wait for grant.
  a.req_line_.write(true);
  do {
    wait(edge);
  } while (a.bus_.Grant.read() != a.my_id_);

  // Address phase (one cycle).
  a.bus_.PAValid.write(true);
  a.bus_.ABus.write(static_cast<std::uint32_t>(txn.addr));
  a.bus_.MCmd.write(static_cast<std::uint8_t>(ocp::txn_cmd(txn)));
  a.bus_.BurstLen.write(static_cast<std::uint8_t>(beats));
  a.bus_.ByteCnt.write(static_cast<std::uint32_t>(txn.payload_bytes()));
  a.bus_.MId.write(a.my_id_);
  wait(edge);
  a.bus_.PAValid.write(false);

  bool error = false;

  if (txn.op == Txn::Op::Write) {
    // Write data phase: advance one beat per acknowledged edge.
    for (std::uint32_t beat = 0; beat < beats;) {
      std::uint32_t w = 0;
      for (std::size_t i = 0; i < ocp::kWordBytes; ++i) {
        const std::size_t idx = beat * ocp::kWordBytes + i;
        if (idx < txn.data.size()) {
          w |= static_cast<std::uint32_t>(txn.data[idx]) << (8 * i);
        }
      }
      a.bus_.WrDBus.write(w);
      a.bus_.WrValid.write(true);
      wait(edge);
      if (a.bus_.WrAck.read()) ++beat;
    }
    a.bus_.WrValid.write(false);
    // Completion.
    for (;;) {
      wait(edge);
      if (a.bus_.Comp.read()) {
        error = a.bus_.CompErr.read();
        break;
      }
    }
    a.req_line_.write(false);
    ++transactions;
    if (error) {
      txn.respond_error();
    } else {
      txn.respond_ok();
    }
    return;
  }

  // Read data phase: capture words on RdAck (straight into the response
  // buffer) until the completion pulse.
  std::vector<std::uint8_t>& rd_bytes = txn.resp_data;
  rd_bytes.clear();
  for (;;) {
    wait(edge);
    if (a.bus_.RdAck.read()) {
      const std::uint32_t w = a.bus_.RdDBus.read();
      for (std::size_t i = 0; i < ocp::kWordBytes; ++i) {
        rd_bytes.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
      }
    }
    if (a.bus_.Comp.read()) {
      error = a.bus_.CompErr.read();
      break;
    }
  }
  rd_bytes.resize(txn.read_bytes);

  a.req_line_.write(false);
  ++transactions;
  if (error) {
    txn.respond_error();
  } else {
    txn.status = Txn::Status::Ok;
  }
}

}  // namespace stlm::accessor
