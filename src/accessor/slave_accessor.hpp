#pragma once
// Slave accessor: connects a pin-level-OCP slave PE to the pin-level bus.
//
// Composition: a bus-slave engine snoops the address phase; on a decode
// hit it captures (write) or produces (read) the data beats on the bus
// wires and drives the PE through an OCP pin-master front end.

#include <string>

#include "accessor/bus_pins.hpp"
#include "cam/address_map.hpp"
#include "kernel/clock.hpp"
#include "kernel/module.hpp"
#include "ocp/pin_master.hpp"
#include "ocp/pins.hpp"

namespace stlm::accessor {

class SlaveAccessor final : public Module {
public:
  SlaveAccessor(Simulator& sim, std::string name, ocp::OcpPins& pe_pins,
                BusPins& bus, Clock& clk, cam::AddressRange decode);

  std::uint64_t transactions() const { return transactions_; }
  const cam::AddressRange& decode_range() const { return decode_; }

private:
  void fsm();

  BusPins& bus_;
  Clock& clk_;
  cam::AddressRange decode_;
  ocp::OcpPinMaster pe_side_;
  Txn txn_;  // reusable descriptor (the FSM serves one transaction at a time)
  std::uint64_t transactions_ = 0;
};

}  // namespace stlm::accessor
