#include "accessor/slave_accessor.hpp"

namespace stlm::accessor {

SlaveAccessor::SlaveAccessor(Simulator& sim, std::string name,
                             ocp::OcpPins& pe_pins, BusPins& bus, Clock& clk,
                             cam::AddressRange decode)
    : Module(sim, std::move(name)),
      bus_(bus),
      clk_(clk),
      decode_(decode),
      pe_side_(sim, full_name() + ".pe_side", pe_pins, clk, this) {
  spawn_thread("fsm", [this] { fsm(); });
}

void SlaveAccessor::fsm() {
  Event& edge = clk_.posedge_event();
  for (;;) {
    wait(edge);
    if (!bus_.PAValid.read()) continue;
    const std::uint64_t addr = bus_.ABus.read();
    if (!decode_.contains(addr)) continue;

    const auto cmd = static_cast<ocp::Cmd>(bus_.MCmd.read());
    const std::uint32_t beats = bus_.BurstLen.read();
    const std::uint32_t byte_cnt = bus_.ByteCnt.read();

    bool error = false;
    if (cmd == ocp::Cmd::Write) {
      // Capture the write burst from the bus into the reusable descriptor.
      txn_.begin_write(addr, nullptr, 0);
      std::vector<std::uint8_t>& bytes = txn_.data;
      bytes.reserve(static_cast<std::size_t>(beats) * ocp::kWordBytes);
      bus_.WrAck.write(true);
      for (std::uint32_t got = 0; got < beats;) {
        wait(edge);
        if (!bus_.WrValid.read()) continue;
        const std::uint32_t w = bus_.WrDBus.read();
        for (std::size_t i = 0; i < ocp::kWordBytes; ++i) {
          bytes.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
        }
        ++got;
      }
      bus_.WrAck.write(false);
      bytes.resize(byte_cnt);
      // Forward to the PE over its own pin-level OCP interface.
      pe_side_.transport(txn_);
      error = !txn_.ok();
    } else if (cmd == ocp::Cmd::Read) {
      txn_.begin_read(addr, byte_cnt);
      pe_side_.transport(txn_);
      error = !txn_.ok();
      if (!error) {
        for (std::uint32_t beat = 0; beat < beats; ++beat) {
          std::uint32_t w = 0;
          for (std::size_t i = 0; i < ocp::kWordBytes; ++i) {
            const std::size_t idx = beat * ocp::kWordBytes + i;
            if (idx < txn_.resp_data.size()) {
              w |= static_cast<std::uint32_t>(txn_.resp_data[idx]) << (8 * i);
            }
          }
          bus_.RdDBus.write(w);
          bus_.RdAck.write(true);
          wait(edge);
        }
        bus_.RdAck.write(false);
      }
    } else {
      continue;  // idle or illegal: not ours to answer
    }

    // Completion pulse (one cycle).
    bus_.Comp.write(true);
    bus_.CompErr.write(error);
    wait(edge);
    bus_.Comp.write(false);
    bus_.CompErr.write(false);
    ++transactions_;
  }
}

}  // namespace stlm::accessor
