file(REMOVE_RECURSE
  "CMakeFiles/test_cam_stress.dir/tests/test_cam_stress.cpp.o"
  "CMakeFiles/test_cam_stress.dir/tests/test_cam_stress.cpp.o.d"
  "test_cam_stress"
  "test_cam_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cam_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
