# Empty dependencies file for test_accessor.
# This may be replaced when dependencies are built.
