# Empty dependencies file for test_cpu_rtos.
# This may be replaced when dependencies are built.
