file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_scheduler.dir/tests/test_kernel_scheduler.cpp.o"
  "CMakeFiles/test_kernel_scheduler.dir/tests/test_kernel_scheduler.cpp.o.d"
  "test_kernel_scheduler"
  "test_kernel_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
