# Empty dependencies file for test_kernel_time.
# This may be replaced when dependencies are built.
