file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_time.dir/tests/test_kernel_time.cpp.o"
  "CMakeFiles/test_kernel_time.dir/tests/test_kernel_time.cpp.o.d"
  "test_kernel_time"
  "test_kernel_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
