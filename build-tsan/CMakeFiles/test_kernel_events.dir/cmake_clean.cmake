file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_events.dir/tests/test_kernel_events.cpp.o"
  "CMakeFiles/test_kernel_events.dir/tests/test_kernel_events.cpp.o.d"
  "test_kernel_events"
  "test_kernel_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
