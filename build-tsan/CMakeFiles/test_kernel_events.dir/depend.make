# Empty dependencies file for test_kernel_events.
# This may be replaced when dependencies are built.
