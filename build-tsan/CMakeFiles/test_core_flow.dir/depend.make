# Empty dependencies file for test_core_flow.
# This may be replaced when dependencies are built.
