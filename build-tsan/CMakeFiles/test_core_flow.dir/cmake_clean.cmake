file(REMOVE_RECURSE
  "CMakeFiles/test_core_flow.dir/tests/test_core_flow.cpp.o"
  "CMakeFiles/test_core_flow.dir/tests/test_core_flow.cpp.o.d"
  "test_core_flow"
  "test_core_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
