# Empty dependencies file for test_kernel_channels.
# This may be replaced when dependencies are built.
