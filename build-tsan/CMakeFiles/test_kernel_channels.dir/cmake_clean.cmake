file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_channels.dir/tests/test_kernel_channels.cpp.o"
  "CMakeFiles/test_kernel_channels.dir/tests/test_kernel_channels.cpp.o.d"
  "test_kernel_channels"
  "test_kernel_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
