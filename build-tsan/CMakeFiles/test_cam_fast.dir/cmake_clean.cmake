file(REMOVE_RECURSE
  "CMakeFiles/test_cam_fast.dir/tests/test_cam_fast.cpp.o"
  "CMakeFiles/test_cam_fast.dir/tests/test_cam_fast.cpp.o.d"
  "test_cam_fast"
  "test_cam_fast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cam_fast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
