# Empty dependencies file for test_cam_fast.
# This may be replaced when dependencies are built.
