# Empty dependencies file for test_cam_split.
# This may be replaced when dependencies are built.
