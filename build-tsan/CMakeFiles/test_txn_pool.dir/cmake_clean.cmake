file(REMOVE_RECURSE
  "CMakeFiles/test_txn_pool.dir/tests/test_txn_pool.cpp.o"
  "CMakeFiles/test_txn_pool.dir/tests/test_txn_pool.cpp.o.d"
  "test_txn_pool"
  "test_txn_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_txn_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
