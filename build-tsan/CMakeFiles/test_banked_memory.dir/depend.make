# Empty dependencies file for test_banked_memory.
# This may be replaced when dependencies are built.
