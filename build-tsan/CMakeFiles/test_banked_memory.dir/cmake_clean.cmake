file(REMOVE_RECURSE
  "CMakeFiles/test_banked_memory.dir/tests/test_banked_memory.cpp.o"
  "CMakeFiles/test_banked_memory.dir/tests/test_banked_memory.cpp.o.d"
  "test_banked_memory"
  "test_banked_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_banked_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
