file(REMOVE_RECURSE
  "libstlm.a"
)
