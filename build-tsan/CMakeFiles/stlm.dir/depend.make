# Empty dependencies file for stlm.
# This may be replaced when dependencies are built.
