# Empty dependencies file for test_ocp_tl.
# This may be replaced when dependencies are built.
