# Empty dependencies file for test_ship_serialization.
# This may be replaced when dependencies are built.
