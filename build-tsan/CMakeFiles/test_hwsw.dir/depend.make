# Empty dependencies file for test_hwsw.
# This may be replaced when dependencies are built.
