# Empty dependencies file for test_cam_basics.
# This may be replaced when dependencies are built.
