file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_wheel.dir/tests/test_kernel_wheel.cpp.o"
  "CMakeFiles/test_kernel_wheel.dir/tests/test_kernel_wheel.cpp.o.d"
  "test_kernel_wheel"
  "test_kernel_wheel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_wheel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
