# Empty dependencies file for test_kernel_wheel.
# This may be replaced when dependencies are built.
